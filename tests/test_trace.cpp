// Tracing subsystem tests: Tracer unit semantics (deterministic sampling,
// span lifecycle, the span cap, reset), end-to-end causal-tree propagation
// (the trace tree reconstructs exactly the delivery set, through churn with
// reliable delivery and through the route cache's stale-hit
// forward-and-correct), and structural validation of the exporters.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <tuple>
#include <unordered_map>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "core/route_cache.hpp"
#include "net/topology.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub {
namespace {

using core::HyperSubSystem;
using trace::kNoSpan;
using trace::kNoTrace;
using trace::Span;
using trace::SpanKind;
using trace::Tracer;

// ---------------------------------------------------------------------------
// Tracer unit semantics
// ---------------------------------------------------------------------------

TEST(TracerUnit, SamplingIsDeterministicAndRateFaithful) {
  // The predicate is a pure function of (id, rate).
  for (trace::TraceId id : {1ull, 2ull, 57ull, 1048576ull}) {
    EXPECT_EQ(Tracer::sampled(id, 0.5), Tracer::sampled(id, 0.5));
    EXPECT_TRUE(Tracer::sampled(id, 1.0));
    EXPECT_FALSE(Tracer::sampled(id, 0.0));
  }
  // Two tracers allocate the same id sequence with the same decisions.
  Tracer a, b;
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.start_trace(0.3), b.start_trace(0.3));
  }
  EXPECT_EQ(a.traces_started(), 200u);
  // At rate 0.3 roughly a third of the ids are kept — the hash is not
  // degenerate in either direction.
  std::size_t kept = 0;
  Tracer c;
  for (int i = 0; i < 1000; ++i) {
    if (c.start_trace(0.3) != kNoTrace) ++kept;
  }
  EXPECT_GT(kept, 200u);
  EXPECT_LT(kept, 400u);
  // Unsampled traces still advance the id counter: sampled ids are stable
  // across rates.
  EXPECT_EQ(c.traces_started(), 1000u);
}

TEST(TracerUnit, SpanLifecycle) {
  Tracer t;
  const auto tid = t.start_trace(1.0);
  ASSERT_NE(tid, kNoTrace);

  const auto root = t.begin(tid, kNoSpan, SpanKind::kPublish, 3, 10.0, 42, 7);
  ASSERT_NE(root, kNoSpan);
  const auto child = t.begin(tid, root, SpanKind::kForward, 3, 11.0, 9);
  ASSERT_NE(child, kNoSpan);
  t.end(child, 15.0);
  t.end(kNoSpan, 99.0);  // no-op

  ASSERT_EQ(t.span_count(), 2u);
  const Span& r = t.spans()[0];
  EXPECT_EQ(r.trace, tid);
  EXPECT_EQ(r.parent, kNoSpan);
  EXPECT_EQ(r.kind, SpanKind::kPublish);
  EXPECT_EQ(r.node, 3u);
  EXPECT_EQ(r.a, 42u);
  EXPECT_EQ(r.b, 7u);
  EXPECT_TRUE(r.open());  // never ended
  const Span& f = t.spans()[1];
  EXPECT_EQ(f.parent, root);
  EXPECT_FALSE(f.open());
  EXPECT_DOUBLE_EQ(f.duration_ms(), 4.0);

  // Spans of an unsampled trace are never recorded.
  EXPECT_EQ(t.begin(kNoTrace, kNoSpan, SpanKind::kPublish, 0, 0.0), kNoSpan);
  EXPECT_EQ(t.span_count(), 2u);
}

TEST(TracerUnit, SpanCapBoundsMemoryAndCounts) {
  Tracer t(Tracer::Config{.max_spans = 4});
  const auto tid = t.start_trace(1.0);
  for (int i = 0; i < 6; ++i) {
    const auto id = t.point(tid, kNoSpan, SpanKind::kDeliver, 0, double(i));
    if (i < 4) {
      EXPECT_NE(id, kNoSpan);
    } else {
      EXPECT_EQ(id, kNoSpan);
    }
  }
  EXPECT_EQ(t.span_count(), 4u);
  EXPECT_EQ(t.dropped_spans(), 2u);
}

TEST(TracerUnit, ResetClearsSpansButKeepsIdsUnique) {
  Tracer t;
  const auto t1 = t.start_trace(1.0);
  const auto s1 = t.point(t1, kNoSpan, SpanKind::kPublish, 0, 1.0);
  t.reset();
  EXPECT_EQ(t.span_count(), 0u);
  const auto t2 = t.start_trace(1.0);
  const auto s2 = t.point(t2, kNoSpan, SpanKind::kPublish, 0, 2.0);
  EXPECT_NE(t1, t2);
  EXPECT_NE(s1, s2);  // span ids are not reused across a reset
}

// ---------------------------------------------------------------------------
// System scaffolding
// ---------------------------------------------------------------------------

struct StackOpts {
  bool reliable = false;
  std::size_t replicas = 0;
  bool cache = false;
  bool batch = false;
  double sample_rate = 1.0;
};

struct Stack {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<chord::ChordNet> chord;
  std::unique_ptr<HyperSubSystem> sys;
  std::unique_ptr<Tracer> tracer;
};

Stack make_stack(std::size_t n, std::uint64_t seed, StackOpts o = {}) {
  Stack s;
  net::KingLikeTopology::Params tp;
  tp.hosts = n;
  tp.seed = seed;
  s.topo = std::make_unique<net::KingLikeTopology>(tp);
  s.sim = std::make_unique<sim::Simulator>();
  s.net = std::make_unique<net::Network>(*s.sim, *s.topo);
  chord::ChordNet::Params cp;
  cp.seed = seed;
  cp.reliable_routing = o.reliable;
  s.chord = std::make_unique<chord::ChordNet>(*s.net, cp);
  HyperSubSystem::Config sc;
  sc.bootstrap = core::BootstrapMode::kOracle;
  sc.reliable_delivery = o.reliable;
  sc.replicas = o.replicas;
  sc.route_cache = o.cache;
  sc.batch_forwarding = o.batch;
  sc.trace_sample_rate = o.sample_rate;
  s.sys = std::make_unique<HyperSubSystem>(*s.chord, sc);
  s.tracer = std::make_unique<Tracer>();
  s.sys->set_tracer(s.tracer.get());
  return s;
}

/// (event seq, subscriber host, iid) — the delivery identity used both by
/// the system's delivery log and by the span log.
using DeliveryKey = std::tuple<std::uint64_t, std::size_t, std::uint32_t>;

std::multiset<DeliveryKey> delivered(const HyperSubSystem& sys) {
  std::multiset<DeliveryKey> out;
  for (const auto& d : sys.deliveries()) {
    out.insert({d.event_seq, d.subscriber, d.iid});
  }
  return out;
}

/// Reconstructs the delivery set from the span log alone: every deliver
/// span, keyed by the event seq carried on its trace's publish root.
std::multiset<DeliveryKey> delivered_by_trace(const Tracer& t) {
  std::unordered_map<trace::TraceId, std::uint64_t> seq_of_trace;
  for (const Span& s : t.spans()) {
    if (s.kind == SpanKind::kPublish && s.parent == kNoSpan) {
      seq_of_trace[s.trace] = s.a;
    }
  }
  std::multiset<DeliveryKey> out;
  for (const Span& s : t.spans()) {
    if (s.kind != SpanKind::kDeliver) continue;
    const auto it = seq_of_trace.find(s.trace);
    EXPECT_NE(it, seq_of_trace.end()) << "deliver span with no publish root";
    if (it == seq_of_trace.end()) continue;
    out.insert({it->second, s.node, std::uint32_t(s.a)});
  }
  return out;
}

/// Every span's parent chain must terminate at a root of its own trace.
void expect_well_formed_trees(const Tracer& t) {
  std::unordered_map<trace::SpanId, const Span*> by_id;
  for (const Span& s : t.spans()) by_id[s.id] = &s;
  for (const Span& s : t.spans()) {
    const Span* cur = &s;
    int guard = 0;
    while (cur->parent != kNoSpan && ++guard < 10000) {
      const auto it = by_id.find(cur->parent);
      ASSERT_NE(it, by_id.end())
          << "span " << cur->id << " has dangling parent " << cur->parent;
      ASSERT_EQ(it->second->trace, s.trace)
          << "span " << s.id << " chains into a different trace";
      cur = it->second;
    }
    ASSERT_LT(guard, 10000) << "parent cycle at span " << s.id;
  }
}

std::size_t count_kind(const Tracer& t, SpanKind k) {
  std::size_t n = 0;
  for (const Span& s : t.spans()) n += (s.kind == k);
  return n;
}

// ---------------------------------------------------------------------------
// End-to-end propagation
// ---------------------------------------------------------------------------

TEST(TracePropagation, CausalTreeMatchesDeliverySet) {
  constexpr std::size_t kHosts = 30;
  auto s = make_stack(kHosts, 3);
  workload::WorkloadGenerator gen(workload::tiny_spec(), 5);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    s.sys->subscribe(net::HostIndex(rng.index(kHosts)), scheme,
                     gen.make_subscription());
  }
  s.sim->run();
  s.tracer->reset();  // event phase only

  constexpr int kEvents = 25;
  for (int i = 0; i < kEvents; ++i) {
    s.sys->publish(net::HostIndex(rng.index(kHosts)), scheme,
                   gen.make_event());
  }
  s.sim->run();
  s.sys->finalize_events();

  // The span log reconstructs the delivery log exactly.
  const auto from_sys = delivered(*s.sys);
  const auto from_trace = delivered_by_trace(*s.tracer);
  EXPECT_GT(from_sys.size(), 0u);
  EXPECT_EQ(from_sys, from_trace);
  expect_well_formed_trees(*s.tracer);

  // One root per publish, all closed (finalize ends every tracker), and in
  // a healthy network every forward edge completed.
  EXPECT_EQ(count_kind(*s.tracer, SpanKind::kPublish), std::size_t(kEvents));
  for (const Span& sp : s.tracer->spans()) {
    if (sp.kind == SpanKind::kPublish || sp.kind == SpanKind::kForward) {
      EXPECT_FALSE(sp.open()) << to_string(sp.kind) << " span left open";
    }
  }
  const auto sum = trace::summarize(*s.tracer);
  EXPECT_EQ(sum.event_traces, std::size_t(kEvents));
  EXPECT_EQ(sum.deliveries, from_sys.size());
  EXPECT_EQ(sum.retries, 0u);
  EXPECT_EQ(sum.drops, 0u);
  EXPECT_EQ(sum.latency_ms.count(), from_sys.size());
}

TEST(TracePropagation, InstallTraceRecordsRouteAndRegistration) {
  auto s = make_stack(24, 11);
  workload::WorkloadGenerator gen(workload::tiny_spec(), 13);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  s.sys->subscribe(5, scheme, gen.make_subscription());
  s.sim->run();

  // The installation produced its own trace: an install root, closed when
  // the subscription registered at its surrogate.
  EXPECT_GE(count_kind(*s.tracer, SpanKind::kInstall), 1u);
  EXPECT_GE(count_kind(*s.tracer, SpanKind::kRegister), 1u);
  for (const Span& sp : s.tracer->spans()) {
    if (sp.kind == SpanKind::kInstall) {
      EXPECT_FALSE(sp.open());
    }
  }
  expect_well_formed_trees(*s.tracer);
}

TEST(TracePropagation, ChurnTracesRetriesReroutesAndDeliveries) {
  constexpr std::size_t kHosts = 40;
  auto s = make_stack(kHosts, 31, {.reliable = true, .replicas = 2});
  workload::WorkloadGenerator gen(workload::table1_spec(), 7);
  core::SchemeOptions opt;
  opt.zone_cfg = {1, 20};
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  Rng rng(41);
  for (int i = 0; i < 200; ++i) {
    s.sys->subscribe(net::HostIndex(rng.index(kHosts)), scheme,
                     gen.make_subscription());
  }
  s.sim->run();
  s.tracer->reset();

  // Kill a third of the network with no repair — stale routing state
  // everywhere — then publish through the wreckage.
  for (net::HostIndex k = 0; k < kHosts; k += 3) s.chord->fail(k);
  for (int i = 0; i < 50; ++i) {
    net::HostIndex pub = net::HostIndex(rng.index(kHosts));
    while (!s.net->alive(pub)) pub = (pub + 1) % kHosts;
    s.sys->publish(pub, scheme, gen.make_event());
  }
  s.sim->run();
  s.sys->finalize_events();

  // The trace trees still reconstruct the delivery set exactly, and the
  // reliability machinery's work is visible in them.
  EXPECT_EQ(delivered(*s.sys), delivered_by_trace(*s.tracer));
  expect_well_formed_trees(*s.tracer);
  const auto sum = trace::summarize(*s.tracer);
  EXPECT_GT(sum.retries, 0u);
  EXPECT_GT(sum.deliveries, 0u);
  // Dead hops swallow subtrees; the spans account for the losses the
  // counters report (expirations surface as retry chains + drops).
  const auto c = s.sys->reliability_counters();
  EXPECT_GT(c.retries, 0u);
  // Every traced retry has a counter behind it (warm-up retries are in the
  // counters but their spans were reset away, so <= not ==).
  EXPECT_LE(sum.retries, c.retries + s.chord->route_reliability().retries);
}

TEST(TracePropagation, StaleCacheHitForwardAndCorrectIsTraced) {
  // The test_route_cache StaleHitSelfRepairs scenario, observed through
  // spans: a poisoned cache entry sends the probe to the wrong host, which
  // forwards it onward; the true owner both delivers and corrects the
  // publisher's cache — all inside one causal tree.
  auto s = make_stack(40, 7, {.cache = true});
  workload::WorkloadGenerator gen(workload::tiny_spec(), 9);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  s.sys->subscribe(2, scheme, pubsub::Subscription(gen.scheme().domain()));
  s.sim->run();
  s.tracer->reset();

  const auto e = gen.make_event();
  const auto& ss = s.sys->scheme_runtime(scheme).subscheme(0);
  const Id key = ss.zone_key(ss.zones().locate(ss.project(e.point)));
  const auto owner = s.chord->oracle_successor(key).host;
  const net::HostIndex pub = (owner + 1) % 40;
  net::HostIndex wrong = (owner + 2) % 40;
  if (wrong == pub) wrong = (wrong + 1) % 40;
  ASSERT_NE(wrong, owner);
  s.sys->route_cache(pub).learn(key, wrong);

  s.sys->publish(pub, scheme, e);
  s.sim->run();
  s.sys->finalize_events();

  ASSERT_EQ(s.sys->deliveries().size(), 1u);
  EXPECT_EQ(delivered(*s.sys), delivered_by_trace(*s.tracer));
  expect_well_formed_trees(*s.tracer);

  // The stale hit and its correction are both on the tree: a cache_hit
  // naming the (wrong) cached owner, then a cache_correct naming the
  // publisher whose cache the true owner fixed.
  bool saw_stale_hit = false, saw_correction = false;
  for (const Span& sp : s.tracer->spans()) {
    if (sp.kind == SpanKind::kCacheHit && sp.a == wrong) saw_stale_hit = true;
    if (sp.kind == SpanKind::kCacheCorrect && sp.a == pub) {
      saw_correction = true;
    }
  }
  EXPECT_TRUE(saw_stale_hit);
  EXPECT_TRUE(saw_correction);
  EXPECT_EQ(s.sys->route_cache(pub).lookup(key), owner);
}

TEST(TracePropagation, RateZeroRecordsNoEventSpans) {
  auto s = make_stack(20, 3, {.sample_rate = 0.0});
  workload::WorkloadGenerator gen(workload::tiny_spec(), 5);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  s.sys->subscribe(4, scheme, pubsub::Subscription(gen.scheme().domain()));
  s.sim->run();
  s.tracer->reset();

  for (int i = 0; i < 10; ++i) {
    s.sys->publish(1, scheme, gen.make_event());
  }
  s.sim->run();
  s.sys->finalize_events();

  EXPECT_GT(s.sys->deliveries().size(), 0u);  // the system still works
  EXPECT_EQ(s.tracer->span_count(), 0u);      // and records nothing
  EXPECT_GT(s.tracer->traces_started(), 0u);  // ids advanced regardless
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(TraceExport, JsonlAndPerfettoAreStructurallySound) {
  auto s = make_stack(20, 3);
  workload::WorkloadGenerator gen(workload::tiny_spec(), 5);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  s.sys->subscribe(4, scheme, pubsub::Subscription(gen.scheme().domain()));
  s.sim->run();
  for (int i = 0; i < 5; ++i) s.sys->publish(1, scheme, gen.make_event());
  s.sim->run();
  s.sys->finalize_events();
  ASSERT_GT(s.tracer->span_count(), 0u);

  // JSONL: one object per line, one line per span, every key present.
  std::ostringstream jl;
  EXPECT_EQ(trace::write_jsonl(*s.tracer, jl), s.tracer->span_count());
  std::istringstream lines(jl.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    for (const char* k :
         {"\"trace\"", "\"span\"", "\"parent\"", "\"kind\"", "\"node\"",
          "\"start_ms\"", "\"end_ms\"", "\"a\"", "\"b\""}) {
      EXPECT_NE(line.find(k), std::string::npos) << k << " missing: " << line;
    }
  }
  EXPECT_EQ(n, s.tracer->span_count());

  // Perfetto: a traceEvents array containing per-node track metadata and
  // one complete ("X") event per closed span.
  std::ostringstream pf;
  EXPECT_GT(trace::write_perfetto(*s.tracer, pf), 0u);
  const std::string p = pf.str();
  EXPECT_EQ(p.rfind("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [", 0),
            0u);
  EXPECT_NE(p.find("]}"), std::string::npos);
  EXPECT_NE(p.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(p.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(p.find("thread_name"), std::string::npos);
}

}  // namespace
}  // namespace hypersub
