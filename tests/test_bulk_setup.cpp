// Bulk (oracle) setup parity: HyperSubSystem::bulk_subscribe must leave
// the system in the same state a fully drained subscribe() cascade
// reaches — same handles, same loads, same zone summaries and parent
// pieces, same subscription sets, same deliveries for the same events —
// and its result must be independent of the setup thread count.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "metrics/snapshot.hpp"
#include "net/topology.hpp"
#include "pastry/pastry_net.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub {
namespace {

using core::HyperSubSystem;
using core::SubscriptionHandle;

constexpr std::size_t kHosts = 48;
constexpr std::size_t kSubs = 400;
constexpr std::uint64_t kSeed = 7;

struct Stack {
  net::KingLikeTopology topo;
  sim::Simulator sim;
  net::Network net;
  chord::ChordNet chord;
  HyperSubSystem sys;
  std::uint32_t scheme;

  static net::KingLikeTopology::Params topo_params() {
    net::KingLikeTopology::Params tp;
    tp.hosts = kHosts;
    tp.seed = kSeed;
    return tp;
  }
  static chord::ChordNet::Params chord_params() {
    chord::ChordNet::Params cp;
    cp.seed = kSeed;
    return cp;
  }

  explicit Stack(HyperSubSystem::Config cfg = {})
      : topo(topo_params()),
        net(sim, topo),
        chord(net, chord_params()),
        sys(chord, (cfg.bootstrap = core::BootstrapMode::kOracle, cfg)) {
    workload::WorkloadGenerator gen(workload::table1_spec(), kSeed + 1);
    core::SchemeOptions opt;
    opt.zone_cfg = {1, 20};
    scheme = sys.add_scheme(gen.scheme(), opt);
  }
};

std::vector<HyperSubSystem::BulkSub> make_batch() {
  workload::WorkloadGenerator gen(workload::table1_spec(), kSeed + 1);
  (void)gen.scheme();  // keep the generator aligned with Stack's draw order
  Rng rng(kSeed + 2);
  std::vector<HyperSubSystem::BulkSub> batch;
  for (std::size_t i = 0; i < kSubs; ++i) {
    batch.push_back(
        {net::HostIndex(rng.index(kHosts)), gen.make_subscription()});
  }
  return batch;
}

std::vector<SubscriptionHandle> install_simulated(Stack& s) {
  std::vector<SubscriptionHandle> handles;
  for (auto& b : make_batch()) {
    handles.push_back(s.sys.subscribe(b.subscriber, s.scheme, b.sub));
  }
  s.sim.run();
  return handles;
}

/// Canonical rendering of every zone's durable content — owner host, zone
/// address, summary, parent piece, and the (order-insensitive) set of
/// stored subscriptions — for whole-system equality checks.
std::string zone_fingerprint(const HyperSubSystem& sys) {
  std::map<std::string, std::string> rows;  // sorted, order-insensitive
  for (net::HostIndex h = 0; h < kHosts; ++h) {
    for (const auto& [addr, z] : sys.node(h).zones()) {
      std::string key = std::to_string(h) + "/" + std::to_string(addr.scheme) +
                        "." + std::to_string(addr.subscheme) + "." +
                        std::to_string(addr.zone.code) + "@" +
                        std::to_string(addr.zone.level);
      std::string row;
      const auto rect = [](const HyperRect& r) {
        std::string s = "[";
        for (const auto& iv : r.dims()) {
          s += std::to_string(iv.lo) + ":" + std::to_string(iv.hi) + ",";
        }
        return s + "]";
      };
      row += "summary=" + rect(z.summary());
      if (z.parent_piece()) {
        row += " piece=" + rect(z.parent_piece()->first) + "/" +
               std::to_string(z.parent_piece()->second);
      }
      std::multiset<std::string> subs;
      for (const auto& s : z.subscriptions()) {
        subs.insert(std::to_string(s.owner.target) + "#" +
                    std::to_string(s.owner.iid));
      }
      row += " subs={";
      for (const auto& s : subs) row += s + ",";
      row += "}";
      rows[std::move(key)] = std::move(row);
    }
  }
  std::string out;
  for (const auto& [k, v] : rows) out += k + " " + v + "\n";
  return out;
}

std::multiset<std::pair<std::size_t, std::uint32_t>> deliver_events(
    Stack& s, int events) {
  workload::WorkloadGenerator gen(workload::table1_spec(), kSeed + 3);
  std::multiset<std::pair<std::size_t, std::uint32_t>> got;
  Rng rng(kSeed + 4);
  for (int e = 0; e < events; ++e) {
    s.sys.publish(net::HostIndex(rng.index(kHosts)), s.scheme,
                  gen.make_event());
  }
  s.sim.run();
  s.sys.finalize_events();
  for (const auto& d : s.sys.deliveries()) {
    got.insert({d.subscriber, d.iid});
  }
  return got;
}

TEST(BulkSetup, MatchesSimulatedInstallState) {
  Stack simulated;
  const auto sim_handles = install_simulated(simulated);

  Stack bulk;
  const auto bulk_handles = bulk.sys.bulk_subscribe(bulk.scheme, make_batch());

  EXPECT_EQ(sim_handles, bulk_handles);
  EXPECT_EQ(simulated.sys.total_subscriptions(),
            bulk.sys.total_subscriptions());
  EXPECT_EQ(simulated.sys.node_loads(), bulk.sys.node_loads());
  EXPECT_EQ(simulated.sys.node_stored_entries(),
            bulk.sys.node_stored_entries());
  EXPECT_EQ(zone_fingerprint(simulated.sys), zone_fingerprint(bulk.sys));
  EXPECT_TRUE(bulk.sys.check_zone_invariants());

  // Same events reach the same subscribers through both setups.
  EXPECT_EQ(deliver_events(simulated, 20), deliver_events(bulk, 20));
}

TEST(BulkSetup, ThreadCountInvariant) {
  Stack one;
  Stack four;
  const auto h1 = one.sys.bulk_subscribe(one.scheme, make_batch(), 1);
  const auto h4 = four.sys.bulk_subscribe(four.scheme, make_batch(), 4);
  EXPECT_EQ(h1, h4);
  EXPECT_EQ(one.sys.node_loads(), four.sys.node_loads());
  EXPECT_EQ(zone_fingerprint(one.sys), zone_fingerprint(four.sys));

  // Byte-identical behavior downstream: the same event feed produces the
  // same delivery log in the same order and the same metrics snapshot.
  deliver_events(one, 20);
  deliver_events(four, 20);
  ASSERT_EQ(one.sys.deliveries().size(), four.sys.deliveries().size());
  for (std::size_t i = 0; i < one.sys.deliveries().size(); ++i) {
    const auto& a = one.sys.deliveries()[i];
    const auto& b = four.sys.deliveries()[i];
    EXPECT_EQ(a.subscriber, b.subscriber) << "row " << i;
    EXPECT_EQ(a.iid, b.iid) << "row " << i;
    EXPECT_EQ(a.event_seq, b.event_seq) << "row " << i;
  }
  EXPECT_EQ(metrics::snapshot(one.sys).to_json(),
            metrics::snapshot(four.sys).to_json());
}

TEST(BulkSetup, ReplicasMirrored) {
  HyperSubSystem::Config cfg;
  cfg.replicas = 2;
  Stack simulated(cfg);
  install_simulated(simulated);

  Stack bulk(cfg);
  bulk.sys.bulk_subscribe(bulk.scheme, make_batch(), 3);

  for (net::HostIndex h = 0; h < kHosts; ++h) {
    EXPECT_EQ(simulated.sys.node(h).replica_zone_count(),
              bulk.sys.node(h).replica_zone_count())
        << "host " << h;
  }
  EXPECT_EQ(simulated.sys.node_loads(), bulk.sys.node_loads());
}

TEST(BulkSetup, UnsubscribeAfterBulkInstall) {
  Stack s;
  auto handles = s.sys.bulk_subscribe(s.scheme, make_batch());
  const std::size_t before = s.sys.total_subscriptions();
  for (std::size_t i = 0; i < handles.size(); i += 4) {
    s.sys.unsubscribe(handles[i]);
  }
  s.sim.run();
  EXPECT_EQ(s.sys.total_subscriptions(), before - (handles.size() + 3) / 4);
  EXPECT_TRUE(s.sys.check_zone_invariants());
}

TEST(BulkSetup, FallsBackToRoutedInstallsWithoutOracleTable) {
  net::KingLikeTopology::Params tp;
  tp.hosts = 24;
  tp.seed = 3;
  net::KingLikeTopology topo(tp);
  sim::Simulator sim;
  net::Network net(sim, topo);
  pastry::PastryNet::Params pp;
  pp.seed = 3;
  pastry::PastryNet pastry(net, pp);
  ASSERT_TRUE(pastry.oracle_owner_table().empty());

  HyperSubSystem::Config pc;
  pc.bootstrap = core::BootstrapMode::kOracle;  // Overlay::build via the system
  HyperSubSystem sys(pastry, pc);
  workload::WorkloadGenerator gen(workload::table1_spec(), 5);
  core::SchemeOptions opt;
  opt.zone_cfg = {1, 20};
  const auto scheme = sys.add_scheme(gen.scheme(), opt);
  std::vector<HyperSubSystem::BulkSub> batch;
  for (std::size_t i = 0; i < 60; ++i) {
    batch.push_back({net::HostIndex(i % 24), gen.make_subscription()});
  }
  const auto handles = sys.bulk_subscribe(scheme, std::move(batch));
  sim.run();  // fallback goes through routed installs
  EXPECT_EQ(handles.size(), 60u);
  EXPECT_EQ(sys.total_subscriptions(), 60u);
  EXPECT_TRUE(sys.check_zone_invariants());
}

}  // namespace
}  // namespace hypersub
