// Randomized model-checking of the geometric core: interval/hyper-rect
// algebra against brute-force point sampling, and LPH locate against a
// linear search over the zone tree. These are the invariants everything
// above (summary filters, piece chains, matching) silently relies on.

#include <gtest/gtest.h>

#include "common/hyperrect.hpp"
#include "common/rng.hpp"
#include "lph/zone.hpp"

namespace hypersub {
namespace {

Interval random_interval(Rng& rng, double lo, double hi) {
  double a = rng.uniform(lo, hi);
  double b = rng.uniform(lo, hi);
  if (a > b) std::swap(a, b);
  return Interval{a, b};
}

TEST(Fuzz, IntervalAlgebraAgreesWithPointSampling) {
  Rng rng(101);
  for (int iter = 0; iter < 2000; ++iter) {
    const Interval x = random_interval(rng, 0, 10);
    const Interval y = random_interval(rng, 0, 10);
    // covers == every sampled point of y is in x.
    bool covers = true;
    bool overlaps = false;
    for (int s = 0; s <= 20; ++s) {
      const double p = y.lo + (y.hi - y.lo) * double(s) / 20.0;
      covers = covers && x.contains(p);
      overlaps = overlaps || x.contains(p);
    }
    EXPECT_EQ(x.covers(y), covers) << x.lo << "," << x.hi << " vs " << y.lo
                                   << "," << y.hi;
    // Sampling can miss a sliver overlap, but never invent one.
    if (overlaps) {
      EXPECT_TRUE(x.overlaps(y));
    }
    if (!x.overlaps(y)) {
      EXPECT_FALSE(overlaps);
    }
    // hull contains both; intersect (when valid) is inside both.
    const Interval h = x.hull(y);
    EXPECT_TRUE(h.covers(x));
    EXPECT_TRUE(h.covers(y));
    if (x.overlaps(y)) {
      const Interval i = x.intersect(y);
      EXPECT_TRUE(x.covers(i));
      EXPECT_TRUE(y.covers(i));
      EXPECT_LE(i.length(), std::min(x.length(), y.length()) + 1e-12);
    }
  }
}

TEST(Fuzz, HyperRectAlgebraAgreesWithPointSampling) {
  Rng rng(103);
  for (int iter = 0; iter < 800; ++iter) {
    const std::size_t d = 1 + rng.index(4);
    std::vector<Interval> xs, ys;
    for (std::size_t i = 0; i < d; ++i) {
      xs.push_back(random_interval(rng, 0, 10));
      ys.push_back(random_interval(rng, 0, 10));
    }
    const HyperRect x(xs), y(ys);
    // Sample points of y; covers means all inside x.
    bool covers = true;
    for (int s = 0; s < 50; ++s) {
      Point p;
      for (std::size_t i = 0; i < d; ++i) {
        p.push_back(rng.uniform(y.dim(i).lo, y.dim(i).hi));
      }
      EXPECT_TRUE(y.contains(p));
      covers = covers && x.contains(p);
    }
    if (x.covers(y)) {
      EXPECT_TRUE(covers);
    }
    if (!covers) {
      EXPECT_FALSE(x.covers(y));
    }
    // hull/intersect relations.
    EXPECT_TRUE(x.hull(y).covers(x));
    EXPECT_TRUE(x.hull(y).covers(y));
    if (x.overlaps(y)) {
      const HyperRect i = x.intersect(y);
      EXPECT_TRUE(x.covers(i));
      EXPECT_TRUE(y.covers(i));
      EXPECT_LE(i.volume_fraction(x.hull(y)), 1.0 + 1e-12);
    }
  }
}

// LPH locate(point) against a linear descent that tries every child.
TEST(Fuzz, LocatePointAgreesWithExhaustiveDescent) {
  Rng rng(107);
  for (const int bb : {1, 2}) {
    for (const std::size_t dims : {std::size_t{1}, std::size_t{3}}) {
      const lph::ZoneSystem zs(HyperRect::uniform(dims, 0.0, 100.0),
                               lph::ZoneSystem::Config::for_dims(dims, bb));
      for (int iter = 0; iter < 300; ++iter) {
        Point p;
        for (std::size_t i = 0; i < dims; ++i) {
          p.push_back(rng.uniform(0.0, 100.0));
        }
        const lph::Zone fast = zs.locate(p);
        // Exhaustive: at each level pick any child whose extent contains p
        // (ties on boundaries allowed — fast must match one such path).
        lph::Zone z = zs.root();
        bool fast_on_path = true;
        for (int l = 0; l < zs.max_level(); ++l) {
          bool found = false;
          for (int c = 0; c < zs.base(); ++c) {
            const lph::Zone child = zs.child(z, c);
            if (zs.extent(child).contains(p)) {
              // Follow the same branch locate() chose when both contain p.
              const int fast_digit = zs.digit(fast, l + 1);
              z = zs.extent(zs.child(z, fast_digit)).contains(p)
                      ? zs.child(z, fast_digit)
                      : child;
              found = true;
              break;
            }
          }
          ASSERT_TRUE(found) << "no child contains the point";
        }
        fast_on_path = (z == fast);
        EXPECT_TRUE(fast_on_path);
        EXPECT_TRUE(zs.extent(fast).contains(p));
      }
    }
  }
}

// locate(rect) minimality, fuzzed across dims/bases.
TEST(Fuzz, LocateRectIsMinimalCover) {
  Rng rng(109);
  for (const int bb : {1, 2}) {
    const std::size_t dims = 3;
    const lph::ZoneSystem zs(HyperRect::uniform(dims, 0.0, 1.0),
                             lph::ZoneSystem::Config::for_dims(dims, bb));
    for (int iter = 0; iter < 400; ++iter) {
      std::vector<Interval> r;
      for (std::size_t i = 0; i < dims; ++i) {
        r.push_back(random_interval(rng, 0.0, 1.0));
      }
      const HyperRect rect(r);
      const lph::Zone z = zs.locate(rect);
      EXPECT_TRUE(zs.extent(z).covers(rect));
      if (!zs.is_leaf(z)) {
        for (int c = 0; c < zs.base(); ++c) {
          EXPECT_FALSE(zs.extent(zs.child(z, c)).covers(rect))
              << "covering zone was not minimal";
        }
      }
    }
  }
}

}  // namespace
}  // namespace hypersub
