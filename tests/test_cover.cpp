// Covering-based subscription aggregation (ROADMAP "Subscription
// aggregation"): CoverSet bookkeeping, ZoneState quench/promote semantics
// against brute force (scan and indexed paths), exact summary recompute
// after arc extraction, exact migrated-bucket rects, and the correctness
// bar — the delivery multiset with cover_aggregation on is identical to
// the baseline and to brute force, including under churn with reliable
// delivery and after load-balancer migration.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "chord/chord_net.hpp"
#include "core/cover_set.hpp"
#include "core/hypersub_system.hpp"
#include "core/load_balancer.hpp"
#include "core/zone_state.hpp"
#include "net/topology.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub {
namespace {

using core::CoverSet;
using core::HyperSubSystem;
using core::LoadBalancer;
using core::MigratedBucket;
using core::StoredSub;
using core::SubArena;
using core::SubId;
using core::SubIdKind;
using core::ZoneAddr;
using core::ZoneState;

constexpr std::size_t kNever = ~std::size_t{0};

// ---------------------------------------------------------------------------
// CoverSet unit semantics
// ---------------------------------------------------------------------------

TEST(CoverSet, QuenchReleaseTakeBookkeeping) {
  CoverSet cs;
  EXPECT_TRUE(cs.empty());
  cs.quench(1, 2);
  cs.quench(1, 3);
  cs.quench(5, 4);
  EXPECT_EQ(cs.quenched_count(), 3u);
  EXPECT_EQ(cs.rep_of(2), 1u);
  EXPECT_EQ(cs.rep_of(4), 5u);
  EXPECT_EQ(cs.rep_of(1), SubArena::kNullRef);  // a rep is not quenched
  ASSERT_NE(cs.coverees(1), nullptr);
  EXPECT_EQ(*cs.coverees(1), (std::vector<SubArena::Ref>{2, 3}));
  EXPECT_EQ(cs.coverees(7), nullptr);

  EXPECT_TRUE(cs.release(3));
  EXPECT_FALSE(cs.release(3));  // already released
  EXPECT_EQ(cs.quenched_count(), 2u);
  EXPECT_EQ(*cs.coverees(1), (std::vector<SubArena::Ref>{2}));

  const auto taken = cs.take_coverees(1);
  EXPECT_EQ(taken, (std::vector<SubArena::Ref>{2}));
  EXPECT_EQ(cs.rep_of(2), SubArena::kNullRef);
  EXPECT_TRUE(cs.take_coverees(1).empty());  // idempotent once removed
  EXPECT_EQ(cs.quenched_count(), 1u);
  cs.take_coverees(5);
  EXPECT_TRUE(cs.empty());
}

// ---------------------------------------------------------------------------
// ZoneState quench/promote semantics
// ---------------------------------------------------------------------------

StoredSub make_stored(std::size_t i, const pubsub::Subscription& sub) {
  const Id owner = Id(i) * 0x9E3779B97F4A7C15ull + 13;
  return StoredSub{SubId{owner, std::uint32_t(i), SubIdKind::kSubscriber},
                   sub, sub.range()};
}

StoredSub stored_rect(std::size_t i, Id owner, const HyperRect& r) {
  return StoredSub{SubId{owner, std::uint32_t(i), SubIdKind::kSubscriber},
                   pubsub::Subscription(r), r};
}

/// Rect shrunk toward its center by fraction `f` per side (f < 0.5).
HyperRect shrink(const HyperRect& r, double f) {
  std::vector<Interval> d;
  for (const auto& iv : r.dims()) {
    d.push_back({iv.lo + f * iv.length(), iv.hi - f * iv.length()});
  }
  return HyperRect(std::move(d));
}

std::vector<SubId> match_of(const ZoneState& z, const Point& p) {
  std::vector<SubId> out;
  z.match(p, p, out);
  return out;
}

TEST(CoverZone, QuenchThenPromoteOnCovererRemove) {
  ZoneState z(ZoneAddr{}, ZoneState::kDefaultIndexThreshold,
              /*cover_aggregation=*/true);
  const HyperRect outer = HyperRect::uniform(2, 0.0, 10.0);
  const HyperRect inner = shrink(outer, 0.25);  // [2.5,7.5]^2
  const auto a = stored_rect(0, 100, outer);
  const auto b = stored_rect(1, 200, inner);
  const auto c = stored_rect(2, 300, outer);  // exact duplicate of a's rect

  EXPECT_TRUE(z.add_subscription(a));   // first content grows the summary
  EXPECT_FALSE(z.add_subscription(b));  // quenched under a
  EXPECT_FALSE(z.add_subscription(c));  // quenched under a (ties go to the
                                        // first coverer in insertion order)
  EXPECT_EQ(z.cover_representatives(), 1u);
  EXPECT_EQ(z.cover_quenched(), 2u);
  EXPECT_EQ(z.subscription_count(), 3u);  // quenched subs are still stored
  EXPECT_EQ(z.summary(), outer);
  EXPECT_EQ(z.exact_summary(), z.summary());

  // Inside the inner rect all three match: the representative first, then
  // its coverees in quench order.
  const auto m = match_of(z, {5.0, 5.0});
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0], a.owner);
  EXPECT_EQ(m[1], b.owner);
  EXPECT_EQ(m[2], c.owner);
  // In the outer ring the quenched inner sub is filtered by its own exact
  // rect even though its representative admitted the event.
  const auto ring = match_of(z, {1.0, 1.0});
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring[0], a.owner);
  EXPECT_EQ(ring[1], c.owner);

  // Removing the representative promotes both coverees (neither covers the
  // other in the b-then-c rehoming order: b's rect is strictly smaller).
  ASSERT_TRUE(z.remove_subscription(a.owner).has_value());
  EXPECT_EQ(z.cover_promotions(), 2u);
  EXPECT_EQ(z.cover_representatives(), 2u);
  EXPECT_EQ(z.cover_quenched(), 0u);
  EXPECT_EQ(z.summary(), outer);  // c still spans the outer rect
  EXPECT_EQ(z.exact_summary(), z.summary());
  const auto after = match_of(z, {5.0, 5.0});
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0], b.owner);
  EXPECT_EQ(after[1], c.owner);
  ASSERT_EQ(match_of(z, {1.0, 1.0}), (std::vector<SubId>{c.owner}));
}

TEST(CoverZone, OrphanRequenchesUnderPromotedSibling) {
  ZoneState z(ZoneAddr{}, ZoneState::kDefaultIndexThreshold, true);
  const HyperRect outer = HyperRect::uniform(2, 0.0, 10.0);
  const HyperRect mid = shrink(outer, 0.1);
  const HyperRect inner = shrink(outer, 0.3);
  const auto a = stored_rect(0, 100, outer);
  const auto b = stored_rect(1, 200, mid);
  const auto c = stored_rect(2, 300, inner);
  z.add_subscription(a);
  z.add_subscription(b);  // quenched under a
  z.add_subscription(c);  // quenched under a (first coverer wins)
  ASSERT_EQ(z.cover_quenched(), 2u);

  // a leaves; b promotes first (nothing covers it), then c re-quenches
  // under the just-promoted b instead of becoming a representative.
  ASSERT_TRUE(z.remove_subscription(a.owner).has_value());
  EXPECT_EQ(z.cover_promotions(), 1u);
  EXPECT_EQ(z.cover_representatives(), 1u);
  EXPECT_EQ(z.cover_quenched(), 1u);
  EXPECT_EQ(z.summary(), mid);
  EXPECT_EQ(z.exact_summary(), z.summary());
  const auto m = match_of(z, {5.0, 5.0});
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], b.owner);
  EXPECT_EQ(m[1], c.owner);
}

TEST(CoverZone, CovereeRemoveLeavesRepAndSummary) {
  ZoneState z(ZoneAddr{}, ZoneState::kDefaultIndexThreshold, true);
  const HyperRect outer = HyperRect::uniform(2, 0.0, 10.0);
  const auto a = stored_rect(0, 100, outer);
  const auto b = stored_rect(1, 200, shrink(outer, 0.25));
  z.add_subscription(a);
  z.add_subscription(b);
  const auto removed = z.remove_subscription(b.owner);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->owner, b.owner);
  EXPECT_EQ(z.cover_representatives(), 1u);
  EXPECT_EQ(z.cover_quenched(), 0u);
  EXPECT_EQ(z.cover_promotions(), 0u);
  EXPECT_EQ(z.summary(), outer);
  ASSERT_EQ(match_of(z, {5.0, 5.0}), (std::vector<SubId>{a.owner}));
}

// Bugfix regression: extraction must recompute the summary exactly (it
// used to keep the stale pre-extraction hull, so the zone kept attracting
// events that matched nothing), and coverees orphaned by a leaving
// representative must survive in the zone.
TEST(CoverZone, ExtractRecomputesSummaryAndRehomesOrphans) {
  for (const bool cover : {false, true}) {
    ZoneState z(ZoneAddr{}, ZoneState::kDefaultIndexThreshold, cover);
    const HyperRect big = HyperRect::uniform(2, 0.0, 10.0);
    const HyperRect small = shrink(big, 0.25);
    // Owner ring ids: 100 inside the arc [50, 200), 5000 outside it.
    const auto leaving = stored_rect(0, 100, big);
    const auto staying = stored_rect(1, 5000, small);
    z.add_subscription(leaving);
    z.add_subscription(staying);  // under cover: quenched beneath `leaving`
    ASSERT_EQ(z.summary(), big);

    const auto out = z.extract_subscribers_in_arc(50, 200);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].owner, leaving.owner);
    EXPECT_EQ(out[0].sub.range(), big);
    // The stale hull would still be `big`; the exact recompute shrinks it.
    EXPECT_EQ(z.summary(), small);
    EXPECT_EQ(z.exact_summary(), z.summary());
    EXPECT_EQ(z.subscription_count(), 1u);
    EXPECT_EQ(z.cover_representatives(), 1u);
    EXPECT_EQ(z.cover_quenched(), 0u);
    if (cover) {
      EXPECT_EQ(z.cover_promotions(), 1u);
    }
    ASSERT_EQ(match_of(z, {5.0, 5.0}), (std::vector<SubId>{staying.owner}));

    // Extracting the rest empties the summary entirely.
    const auto rest = z.extract_subscribers_in_arc(4000, 6000);
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_TRUE(z.summary().empty());
    EXPECT_EQ(z.exact_summary(), z.summary());
  }
}

// Bugfix regression: a migrated bucket's hull over-covers; match() must
// forward the pointer only when one of the exact per-sub rects contains
// the point, not for the hull's dead corners.
TEST(CoverZone, BucketExactRectsGateForwarding) {
  const HyperRect lo_corner(
      {Interval{0.0, 2.0}, Interval{0.0, 2.0}});
  const HyperRect hi_corner(
      {Interval{8.0, 10.0}, Interval{8.0, 10.0}});
  const HyperRect hull = lo_corner.hull(hi_corner);  // [0,10]^2
  const SubId ptr{Id{7}, 1, SubIdKind::kMigrated};

  ZoneState exact(ZoneAddr{});
  exact.add_migrated_bucket(MigratedBucket{hull, {lo_corner, hi_corner}, ptr});
  EXPECT_EQ(match_of(exact, {1.0, 1.0}), (std::vector<SubId>{ptr}));
  EXPECT_EQ(match_of(exact, {9.0, 9.0}), (std::vector<SubId>{ptr}));
  EXPECT_TRUE(match_of(exact, {1.0, 9.0}).empty());  // dead corner
  EXPECT_TRUE(match_of(exact, {5.0, 5.0}).empty());  // dead center

  // Without exact rects the hull alone decides (legacy bucket form).
  ZoneState hull_only(ZoneAddr{});
  hull_only.add_migrated_bucket(MigratedBucket{hull, {}, ptr});
  EXPECT_EQ(match_of(hull_only, {1.0, 9.0}), (std::vector<SubId>{ptr}));
}

// ---------------------------------------------------------------------------
// Randomized parity: cover zone (scan and indexed) vs plain zone vs brute
// force, through adds, removals, and arc extraction
// ---------------------------------------------------------------------------

TEST(CoverZone, RandomizedParityAgainstBruteForce) {
  for (const std::uint64_t seed : {3ull, 5ull, 9ull}) {
    workload::WorkloadGenerator gen(workload::table1_spec(), seed);
    ZoneState cover_scan(ZoneAddr{}, kNever, /*cover_aggregation=*/true);
    ZoneState cover_idx(ZoneAddr{}, /*index_threshold=*/0, true);
    ZoneState plain(ZoneAddr{}, kNever, false);

    // A dup-heavy workload: most inserts reuse a small pool verbatim or
    // shrunk (guaranteed containment), the rest are fresh — so quenching,
    // re-quenching, and promotion all fire along the way.
    std::vector<pubsub::Subscription> pool;
    for (int i = 0; i < 24; ++i) pool.push_back(gen.make_subscription());
    Rng rng(seed * 11 + 1);
    auto random_sub = [&]() -> pubsub::Subscription {
      if (rng.chance(0.6)) {
        const auto& base = pool[rng.index(pool.size())];
        if (rng.chance(0.5)) {
          return pubsub::Subscription(shrink(base.range(), 0.1));
        }
        return base;
      }
      return gen.make_subscription();
    };

    std::vector<StoredSub> live;
    std::size_t next_id = 0;
    auto add_batch = [&](std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        const auto s = make_stored(next_id++, random_sub());
        live.push_back(s);
        cover_scan.add_subscription(s);
        cover_idx.add_subscription(s);
        plain.add_subscription(s);
      }
    };

    using OwnerKey = std::pair<Id, std::uint32_t>;
    auto owner_multiset = [](const std::vector<SubId>& v) {
      std::multiset<OwnerKey> out;
      for (const auto& s : v) out.insert({s.target, s.iid});
      return out;
    };
    auto expect_parity = [&](const char* what) {
      ASSERT_TRUE(cover_idx.index_active() || live.empty()) << what;
      ASSERT_FALSE(cover_scan.index_active()) << what;
      EXPECT_EQ(cover_scan.cover_representatives(),
                cover_idx.cover_representatives())
          << what;
      EXPECT_EQ(cover_scan.cover_quenched(), cover_idx.cover_quenched())
          << what;
      EXPECT_EQ(cover_scan.summary(), plain.summary()) << what;
      EXPECT_EQ(cover_scan.exact_summary(), cover_scan.summary()) << what;
      EXPECT_EQ(cover_scan.subscription_count(), live.size()) << what;
      for (int e = 0; e < 48; ++e) {
        const Point p = gen.make_event().point;
        const auto scan = match_of(cover_scan, p);
        // The indexed coverer pick must equal the scan pick, so the two
        // cover zones agree subid-for-subid, order included.
        ASSERT_EQ(scan, match_of(cover_idx, p))
            << what << " seed " << seed << " event " << e;
        // Against the plain zone and brute force only the multiset is
        // promised: expansion emits coverees after their representative,
        // not in global insertion order.
        std::multiset<OwnerKey> expect;
        for (const auto& s : live) {
          if (s.sub.matches(p)) expect.insert({s.owner.target, s.owner.iid});
        }
        ASSERT_EQ(owner_multiset(scan), expect)
            << what << " seed " << seed << " event " << e;
        ASSERT_EQ(owner_multiset(match_of(plain, p)), expect)
            << what << " seed " << seed << " event " << e;
      }
    };

    add_batch(300);
    EXPECT_GT(cover_scan.cover_quenched(), 0u);
    expect_parity("after adds");

    // Owner-keyed removals hit representatives and coverees alike.
    std::vector<StoredSub> keep;
    for (const auto& s : live) {
      if (rng.chance(0.3)) {
        ASSERT_TRUE(cover_scan.remove_subscription(s.owner).has_value());
        ASSERT_TRUE(cover_idx.remove_subscription(s.owner).has_value());
        ASSERT_TRUE(plain.remove_subscription(s.owner).has_value());
      } else {
        keep.push_back(s);
      }
    }
    live = std::move(keep);
    EXPECT_EQ(cover_scan.cover_promotions(), cover_idx.cover_promotions());
    expect_parity("after removals");

    // Arc extraction (the migration path): all three zones hand back the
    // same owner multiset, and the survivors keep matching exactly.
    const Id lo = rng.next_u64();
    const Id hi = lo + (~Id{0} / 3);
    const auto out_s = cover_scan.extract_subscribers_in_arc(lo, hi);
    const auto out_i = cover_idx.extract_subscribers_in_arc(lo, hi);
    const auto out_p = plain.extract_subscribers_in_arc(lo, hi);
    auto extracted_owners = [](const std::vector<StoredSub>& v) {
      std::multiset<OwnerKey> out;
      for (const auto& s : v) out.insert({s.owner.target, s.owner.iid});
      return out;
    };
    const auto gone = extracted_owners(out_p);
    ASSERT_EQ(extracted_owners(out_s), gone);
    ASSERT_EQ(extracted_owners(out_i), gone);
    EXPECT_GT(gone.size(), 0u);
    std::vector<StoredSub> survivors;
    for (const auto& s : live) {
      if (!gone.count({s.owner.target, s.owner.iid})) survivors.push_back(s);
    }
    live = std::move(survivors);
    expect_parity("after arc extraction");

    add_batch(150);
    expect_parity("after post-extraction adds");
  }
}

// ---------------------------------------------------------------------------
// System scaffolding (mirrors tests/test_route_cache.cpp)
// ---------------------------------------------------------------------------

struct StackOpts {
  bool reliable = false;
  std::size_t replicas = 0;
  bool cover = false;
};

struct Stack {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<chord::ChordNet> chord;
  std::unique_ptr<HyperSubSystem> sys;
};

Stack make_stack(std::size_t n, std::uint64_t seed, StackOpts o = {}) {
  Stack s;
  net::KingLikeTopology::Params tp;
  tp.hosts = n;
  tp.seed = seed;
  s.topo = std::make_unique<net::KingLikeTopology>(tp);
  s.sim = std::make_unique<sim::Simulator>();
  s.net = std::make_unique<net::Network>(*s.sim, *s.topo);
  chord::ChordNet::Params cp;
  cp.seed = seed;
  cp.reliable_routing = o.reliable;
  s.chord = std::make_unique<chord::ChordNet>(*s.net, cp);
  HyperSubSystem::Config sc;
  sc.bootstrap = core::BootstrapMode::kOracle;
  sc.reliable_delivery = o.reliable;
  sc.replicas = o.replicas;
  sc.cover_aggregation = o.cover;
  s.sys = std::make_unique<HyperSubSystem>(*s.chord, sc);
  return s;
}

using DeliveryKey = std::tuple<std::uint64_t, std::size_t, std::uint32_t>;

std::multiset<DeliveryKey> delivered(const HyperSubSystem& sys) {
  std::multiset<DeliveryKey> out;
  for (const auto& d : sys.deliveries()) {
    out.insert({d.event_seq, d.subscriber, d.iid});
  }
  return out;
}

struct Owned {
  net::HostIndex host;
  std::uint32_t iid;
  pubsub::Subscription sub;
};

// ---------------------------------------------------------------------------
// The correctness bar: cover on == cover off == brute force
// ---------------------------------------------------------------------------

TEST(CoverSystem, DeliveryParityAndRegistrationReduction) {
  constexpr std::size_t kHosts = 40;
  constexpr int kSubs = 240;

  auto run = [&](bool cover) {
    auto s = make_stack(kHosts, 53, {.cover = cover});
    workload::WorkloadGenerator gen(workload::tiny_spec(), 59);
    core::SchemeOptions opt;
    opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
    const auto scheme = s.sys->add_scheme(gen.scheme(), opt);

    // Dup-heavy interest pool: identical and shrunk-copy subscriptions
    // hash to the same zone, so quenching engages; several subs per host
    // mean same-target runs for the grouped subid encoding.
    std::vector<pubsub::Subscription> pool;
    for (int i = 0; i < 20; ++i) pool.push_back(gen.make_subscription());
    std::vector<Owned> subs;
    Rng rng(61);
    for (int i = 0; i < kSubs; ++i) {
      const auto host = net::HostIndex(rng.index(kHosts));
      pubsub::Subscription sub = pool[rng.index(pool.size())];
      const int kind = int(rng.index(3));
      if (kind == 1) {
        sub = pubsub::Subscription(shrink(sub.range(), 0.1));
      } else if (kind == 2) {
        sub = gen.make_subscription();
      }
      subs.push_back({host, s.sys->subscribe(host, scheme, sub).iid, sub});
    }
    s.sim->run();

    std::vector<pubsub::Event> pool_ev;
    for (int i = 0; i < 6; ++i) pool_ev.push_back(gen.make_event());
    const net::HostIndex pub = 7;
    std::vector<pubsub::Event> events;
    for (int round = 0; round < 10; ++round) {
      for (int b = 0; b < 4; ++b) {
        auto e = pool_ev[std::size_t(round * 4 + b) % pool_ev.size()];
        events.push_back(e);
        s.sys->publish(pub, scheme, std::move(e));
      }
      s.sim->run();
    }
    s.sys->finalize_events();
    return std::make_tuple(std::move(s), std::move(subs), std::move(events));
  };

  auto [base, base_subs, base_events] = run(false);
  auto [agg, agg_subs, agg_events] = run(true);

  ASSERT_EQ(base_events.size(), agg_events.size());
  const auto base_set = delivered(*base.sys);
  EXPECT_EQ(base_set, delivered(*agg.sys));
  std::multiset<DeliveryKey> expected;
  for (std::size_t i = 0; i < base_events.size(); ++i) {
    for (const auto& o : base_subs) {
      if (o.sub.matches(base_events[i].point)) {
        expected.insert({std::uint64_t(i + 1), o.host, o.iid});
      }
    }
  }
  EXPECT_EQ(base_set, expected);

  // Aggregation actually engaged: every stored sub is either a
  // representative or quenched, a real fraction got quenched, the grouped
  // encoding paid fewer subid bytes, and the off-path counters stay zero.
  const auto cc = agg.sys->cover_counters();
  EXPECT_EQ(cc.representatives + cc.quenched, std::uint64_t(kSubs));
  EXPECT_GT(cc.quenched, 0u);
  EXPECT_GT(cc.subid_bytes_saved, 0u);
  const auto base_cc = base.sys->cover_counters();
  EXPECT_EQ(base_cc.quenched, 0u);
  EXPECT_EQ(base_cc.subid_bytes_saved, 0u);
  // Quenched subs still count as stored load.
  EXPECT_EQ(base.sys->total_subscriptions(), agg.sys->total_subscriptions());
  EXPECT_TRUE(agg.sys->check_zone_invariants());
}

TEST(CoverSystem, DeliveryParityUnderChurnWithReliability) {
  constexpr std::size_t kHosts = 40;
  constexpr std::size_t kSubscriberHosts = 20;  // hosts 0..19 subscribe

  auto run = [&](bool cover) {
    auto s = make_stack(kHosts, 67,
                        {.reliable = true, .replicas = 2, .cover = cover});
    workload::WorkloadGenerator gen(workload::tiny_spec(), 71);
    core::SchemeOptions opt;
    opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
    const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
    std::vector<pubsub::Subscription> pool;
    for (int i = 0; i < 16; ++i) pool.push_back(gen.make_subscription());
    std::vector<Owned> subs;
    Rng rng(73);
    for (int i = 0; i < 120; ++i) {
      const auto host = net::HostIndex(rng.index(kSubscriberHosts));
      const pubsub::Subscription sub = rng.chance(0.6)
                                           ? pool[rng.index(pool.size())]
                                           : gen.make_subscription();
      subs.push_back({host, s.sys->subscribe(host, scheme, sub).iid, sub});
    }
    s.sim->run();

    // Crashes interleaved with publish bursts; replica failover has to
    // preserve the aggregated zones' delivery expansion.
    std::vector<pubsub::Event> events;
    for (int round = 0; round < 6; ++round) {
      const auto victim = net::HostIndex(
          kSubscriberHosts + rng.index(kHosts - kSubscriberHosts));
      if (s.net->alive(victim)) s.chord->fail(victim);
      for (int b = 0; b < 3; ++b) {
        const auto pub = net::HostIndex(rng.index(kSubscriberHosts));
        auto e = gen.make_event();
        events.push_back(e);
        s.sys->publish(pub, scheme, std::move(e));
      }
      s.sim->run();
    }
    s.sys->finalize_events();
    return std::make_tuple(std::move(s), std::move(subs), std::move(events));
  };

  auto [base, base_subs, base_events] = run(false);
  auto [agg, agg_subs, agg_events] = run(true);

  const auto base_set = delivered(*base.sys);
  const auto agg_set = delivered(*agg.sys);
  EXPECT_EQ(base_set, agg_set);

  std::multiset<DeliveryKey> expected;
  for (std::size_t i = 0; i < base_events.size(); ++i) {
    for (const auto& o : base_subs) {
      if (o.sub.matches(base_events[i].point)) {
        expected.insert({std::uint64_t(i + 1), o.host, o.iid});
      }
    }
  }
  EXPECT_EQ(base_set, expected);
  EXPECT_EQ(agg_set, expected);
  EXPECT_GT(agg.sys->cover_counters().quenched, 0u);

  // No duplicate deliveries despite retries, reroutes, and expansion.
  std::set<DeliveryKey> unique(agg_set.begin(), agg_set.end());
  EXPECT_EQ(unique.size(), agg_set.size());
}

// Load-balancer migration of a heavily aggregated hot spot: extraction
// promotes/re-homes coverees, the donor's summary shrinks exactly, the
// migrated bucket carries exact rects, and every subscriber still gets
// the event through the bucket pointer.
TEST(CoverSystem, MigrationOfAggregatedHotSpotKeepsDeliveries) {
  auto s = make_stack(30, 79, {.cover = true});
  workload::WorkloadGenerator gen(workload::tiny_spec(), 83);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  const auto& sch = s.sys->scheme_runtime(scheme).scheme();
  const auto& dom = sch.domain();

  // 120 identical point subscriptions: one representative, 119 quenched,
  // all in one leaf zone on one surrogate — the migration target.
  const double x = dom.dim(0).lo + 0.3 * dom.dim(0).length();
  const double y = dom.dim(1).lo + 0.3 * dom.dim(1).length();
  const pubsub::Predicate hot[] = {{0, {x, x}}, {1, {y, y}}};
  for (net::HostIndex h = 0; h < 30; ++h) {
    for (int k = 0; k < 4; ++k) {
      s.sys->subscribe(h, scheme,
                       pubsub::Subscription::from_predicates(sch, hot));
    }
  }
  s.sim->run();
  const auto before_cc = s.sys->cover_counters();
  EXPECT_EQ(before_cc.representatives + before_cc.quenched, 120u);
  EXPECT_GT(before_cc.quenched, 100u);

  const pubsub::Event e{0, {x, y}};
  const net::HostIndex pub = 11;
  s.sys->publish(pub, scheme, e);
  s.sim->run();
  s.sys->finalize_events();
  ASSERT_EQ(s.sys->deliveries().size(), 120u);

  LoadBalancer::Config lc;
  lc.delta = 0.05;
  lc.min_load = 2;
  LoadBalancer lb(*s.sys, lc);
  lb.run_round();
  s.sim->run();
  ASSERT_GT(lb.migrated_count(), 0u);
  // Exact summaries and exact bucket rects everywhere, donors included.
  EXPECT_TRUE(s.sys->check_zone_invariants());

  const std::size_t before = s.sys->deliveries().size();
  s.sys->publish(pub, scheme, e);
  s.sim->run();
  s.sys->finalize_events();
  EXPECT_EQ(s.sys->deliveries().size() - before, 120u);
}

}  // namespace
}  // namespace hypersub
