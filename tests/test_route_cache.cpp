// Publish fast-lane tests: RouteCache unit semantics (LRU, counters),
// cache-directed publishing end to end (repeat publishes hit, stale hits
// self-repair via forward-and-correct, node death and load-balancer
// migration invalidate), frame batching, and the correctness bar — the
// delivery set with caching + batching on is identical to the baseline,
// against brute force, including under churn with reliable delivery.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <tuple>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "core/load_balancer.hpp"
#include "core/route_cache.hpp"
#include "net/topology.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub {
namespace {

using core::HyperSubSystem;
using core::LoadBalancer;
using core::RouteCache;

constexpr net::HostIndex kInvalid = overlay::Peer::kInvalidHost;

// ---------------------------------------------------------------------------
// RouteCache unit semantics
// ---------------------------------------------------------------------------

TEST(RouteCache, MissThenLearnThenHit) {
  RouteCache c(4);
  EXPECT_EQ(c.lookup(1), kInvalid);
  c.learn(1, 10);
  EXPECT_EQ(c.lookup(1), 10u);
  const auto ct = c.counters();
  EXPECT_EQ(ct.misses, 1u);
  EXPECT_EQ(ct.hits, 1u);
  EXPECT_EQ(ct.insertions, 1u);
  EXPECT_EQ(ct.entries, 1u);
}

TEST(RouteCache, LruEvictsColdestEntry) {
  RouteCache c(2);
  c.learn(1, 10);
  c.learn(2, 20);
  EXPECT_EQ(c.lookup(1), 10u);  // 1 becomes most recent; 2 is now coldest
  c.learn(3, 30);
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(3));
  const auto ct = c.counters();
  EXPECT_EQ(ct.evictions, 1u);
  EXPECT_EQ(ct.entries, 2u);
}

TEST(RouteCache, LearnOverwriteCountsStaleCorrection) {
  RouteCache c(4);
  c.learn(1, 10);
  c.learn(1, 11);  // new owner: correction
  EXPECT_EQ(c.counters().stale_corrections, 1u);
  c.learn(1, 11);  // same owner: not a correction
  EXPECT_EQ(c.counters().stale_corrections, 1u);
  EXPECT_EQ(c.lookup(1), 11u);
  EXPECT_EQ(c.counters().insertions, 1u);
}

TEST(RouteCache, ForgetAndInvalidateHost) {
  RouteCache c(8);
  c.learn(1, 10);
  c.learn(2, 10);
  c.learn(3, 30);
  c.forget(3);
  c.forget(99);          // absent key: no-op
  c.invalidate_host(10);  // drops both entries pointing at host 10
  const auto ct = c.counters();
  EXPECT_EQ(ct.invalidations, 3u);
  EXPECT_EQ(ct.entries, 0u);
}

// ---------------------------------------------------------------------------
// System scaffolding
// ---------------------------------------------------------------------------

struct StackOpts {
  bool reliable = false;
  std::size_t replicas = 0;
  bool cache = false;
  bool batch = false;
};

struct Stack {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<chord::ChordNet> chord;
  std::unique_ptr<HyperSubSystem> sys;
};

Stack make_stack(std::size_t n, std::uint64_t seed, StackOpts o = {}) {
  Stack s;
  net::KingLikeTopology::Params tp;
  tp.hosts = n;
  tp.seed = seed;
  s.topo = std::make_unique<net::KingLikeTopology>(tp);
  s.sim = std::make_unique<sim::Simulator>();
  s.net = std::make_unique<net::Network>(*s.sim, *s.topo);
  chord::ChordNet::Params cp;
  cp.seed = seed;
  cp.reliable_routing = o.reliable;
  s.chord = std::make_unique<chord::ChordNet>(*s.net, cp);
  HyperSubSystem::Config sc;
  sc.bootstrap = core::BootstrapMode::kOracle;
  sc.reliable_delivery = o.reliable;
  sc.replicas = o.replicas;
  sc.route_cache = o.cache;
  sc.batch_forwarding = o.batch;
  s.sys = std::make_unique<HyperSubSystem>(*s.chord, sc);
  return s;
}

/// Rotated Chord key of the rendezvous (leaf) zone the event hashes to.
Id rendezvous_key(const HyperSubSystem& sys, std::uint32_t scheme,
                  const pubsub::Event& e) {
  const auto& ss = sys.scheme_runtime(scheme).subscheme(0);
  const Point proj = ss.project(e.point);
  return ss.zone_key(ss.zones().locate(proj));
}

using DeliveryKey = std::tuple<std::uint64_t, std::size_t, std::uint32_t>;

std::multiset<DeliveryKey> delivered(const HyperSubSystem& sys) {
  std::multiset<DeliveryKey> out;
  for (const auto& d : sys.deliveries()) {
    out.insert({d.event_seq, d.subscriber, d.iid});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Cache-directed publishing end to end
// ---------------------------------------------------------------------------

TEST(RouteCacheSystem, RepeatPublishLearnsThenHits) {
  auto s = make_stack(40, 3, {.cache = true});
  workload::WorkloadGenerator gen(workload::tiny_spec(), 5);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  s.sys->subscribe(6, scheme, pubsub::Subscription(gen.scheme().domain()));
  s.sim->run();

  const auto e = gen.make_event();
  const Id key = rendezvous_key(*s.sys, scheme, e);
  const auto owner = s.chord->oracle_successor(key).host;
  const net::HostIndex pub = (owner + 1) % 40;

  s.sys->publish(pub, scheme, e);
  s.sim->run();
  // First publish missed, rode normal routing, and the owner's correction
  // message taught the publisher the route.
  EXPECT_GE(s.sys->route_cache(pub).counters().misses, 1u);
  ASSERT_TRUE(s.sys->route_cache(pub).contains(key));
  EXPECT_EQ(s.sys->route_cache(pub).lookup(key), owner);

  s.sys->publish(pub, scheme, e);
  s.sim->run();
  s.sys->finalize_events();
  EXPECT_GE(s.sys->route_cache(pub).counters().hits, 2u);  // + lookup above
  // Both events reached the subscriber exactly once; the cache-directed
  // run never needs more hops than the greedy route.
  ASSERT_EQ(s.sys->deliveries().size(), 2u);
  const auto& recs = s.sys->event_metrics().records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_LE(recs[1].max_hops, recs[0].max_hops);
}

TEST(RouteCacheSystem, StaleHitSelfRepairs) {
  auto s = make_stack(40, 7, {.cache = true});
  workload::WorkloadGenerator gen(workload::tiny_spec(), 9);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  s.sys->subscribe(2, scheme, pubsub::Subscription(gen.scheme().domain()));
  s.sim->run();

  const auto e = gen.make_event();
  const Id key = rendezvous_key(*s.sys, scheme, e);
  const auto owner = s.chord->oracle_successor(key).host;
  const net::HostIndex pub = (owner + 1) % 40;
  net::HostIndex wrong = (owner + 2) % 40;
  if (wrong == pub) wrong = (wrong + 1) % 40;
  ASSERT_NE(wrong, owner);

  // Inject a stale entry: the publisher believes `wrong` owns the key.
  s.sys->route_cache(pub).learn(key, wrong);
  s.sys->publish(pub, scheme, e);
  s.sim->run();
  s.sys->finalize_events();

  // The mis-directed probe was forwarded by `wrong` to the true owner
  // (delivery survives), and the owner corrected the publisher's cache.
  ASSERT_EQ(s.sys->deliveries().size(), 1u);
  EXPECT_EQ(s.sys->deliveries()[0].subscriber, 2u);
  EXPECT_GE(s.sys->route_cache(pub).counters().stale_corrections, 1u);
  EXPECT_EQ(s.sys->route_cache(pub).lookup(key), owner);
}

TEST(RouteCacheSystem, NodeDeathInvalidatesAndReroutes) {
  auto s = make_stack(40, 11, {.reliable = true, .replicas = 2,
                               .cache = true});
  workload::WorkloadGenerator gen(workload::tiny_spec(), 13);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  const net::HostIndex subscriber = 4;
  s.sys->subscribe(subscriber, scheme,
                   pubsub::Subscription(gen.scheme().domain()));
  s.sim->run();

  const auto e = gen.make_event();
  const Id key = rendezvous_key(*s.sys, scheme, e);
  const auto owner = s.chord->oracle_successor(key).host;
  net::HostIndex pub = (owner + 1) % 40;
  if (pub == subscriber) pub = (pub + 1) % 40;
  ASSERT_NE(owner, subscriber);
  ASSERT_NE(owner, pub);

  s.sys->publish(pub, scheme, e);
  s.sim->run();
  ASSERT_EQ(s.sys->route_cache(pub).lookup(key), owner);
  ASSERT_EQ(s.sys->deliveries().size(), 1u);

  // Kill the cached rendezvous owner. The next cache-directed frame times
  // out, the failure callback purges the dead host from the publisher's
  // cache, and the reroute reaches the owner's heir (which matches from
  // its replicas) — the delivery still happens.
  s.chord->fail(owner);
  s.sys->publish(pub, scheme, e);
  s.sim->run();
  s.sys->finalize_events();

  ASSERT_EQ(s.sys->deliveries().size(), 2u);
  EXPECT_EQ(s.sys->deliveries()[1].subscriber, subscriber);
  EXPECT_GE(s.sys->route_cache(pub).counters().invalidations, 1u);
  // Whatever the cache holds for the key now, it is not the dead node.
  if (s.sys->route_cache(pub).contains(key)) {
    EXPECT_NE(s.sys->route_cache(pub).lookup(key), owner);
  }
}

TEST(RouteCacheSystem, MigrationInvalidatesCachedRoute) {
  auto s = make_stack(30, 17, {.cache = true});
  workload::WorkloadGenerator gen(workload::tiny_spec(), 19);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  const auto& sch = s.sys->scheme_runtime(scheme).scheme();
  const auto& dom = sch.domain();

  // A hot spot: many point subscriptions at the same location all hash to
  // one leaf zone on one surrogate — exactly what migration targets.
  const double x = dom.dim(0).lo + 0.3 * dom.dim(0).length();
  const double y = dom.dim(1).lo + 0.3 * dom.dim(1).length();
  const pubsub::Predicate hot[] = {{0, {x, x}}, {1, {y, y}}};
  for (net::HostIndex h = 0; h < 30; ++h) {
    for (int k = 0; k < 4; ++k) {
      s.sys->subscribe(h, scheme,
                       pubsub::Subscription::from_predicates(sch, hot));
    }
  }
  s.sim->run();

  const pubsub::Event e{0, {x, y}};
  const Id key = rendezvous_key(*s.sys, scheme, e);
  const auto owner = s.chord->oracle_successor(key).host;
  const net::HostIndex pub = (owner + 1) % 30;
  s.sys->publish(pub, scheme, e);
  s.sim->run();
  ASSERT_TRUE(s.sys->route_cache(pub).contains(key));

  LoadBalancer::Config lc;
  lc.delta = 0.05;
  lc.min_load = 2;
  LoadBalancer lb(*s.sys, lc);
  lb.run_round();
  s.sim->run();
  ASSERT_GT(lb.migrated_count(), 0u);
  // The migration changed the zone behind the cached key: every cache
  // dropped it.
  EXPECT_FALSE(s.sys->route_cache(pub).contains(key));
  EXPECT_GE(s.sys->route_cache_counters().invalidations, 1u);

  // The next publish re-learns and still reaches every subscriber (the
  // surrogate chases the migrated bucket).
  const std::size_t before = s.sys->deliveries().size();
  s.sys->publish(pub, scheme, e);
  s.sim->run();
  s.sys->finalize_events();
  EXPECT_EQ(s.sys->deliveries().size() - before, 120u);
}

// ---------------------------------------------------------------------------
// The correctness bar: fast lane on == fast lane off == brute force
// ---------------------------------------------------------------------------

TEST(FastLane, DeliveryParityAndBatchingSavesHeaders) {
  constexpr std::size_t kHosts = 50;
  struct Owned {
    net::HostIndex host;
    std::uint32_t iid;
    pubsub::Subscription sub;
  };

  auto run = [&](bool fast) {
    auto s = make_stack(kHosts, 23, {.cache = fast, .batch = fast});
    workload::WorkloadGenerator gen(workload::tiny_spec(), 29);
    core::SchemeOptions opt;
    opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
    const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
    std::vector<Owned> subs;
    Rng rng(31);
    for (int i = 0; i < 250; ++i) {
      const auto host = net::HostIndex(rng.index(kHosts));
      const auto sub = gen.make_subscription();
      subs.push_back({host, s.sys->subscribe(host, scheme, sub).iid, sub});
    }
    s.sim->run();

    // A hot event pool from one feed node: repeated rendezvous keys give
    // the cache something to hit, and several events per quiescent step
    // give same-next-hop frames something to coalesce.
    std::vector<pubsub::Event> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(gen.make_event());
    const net::HostIndex pub = 7;
    std::vector<pubsub::Event> events;
    for (int round = 0; round < 12; ++round) {
      for (int b = 0; b < 4; ++b) {
        auto e = pool[std::size_t(round * 4 + b) % pool.size()];
        events.push_back(e);
        s.sys->publish(pub, scheme, std::move(e));
      }
      s.sim->run();
    }
    s.sys->finalize_events();
    return std::make_tuple(std::move(s), std::move(subs),
                           std::move(events));
  };

  auto [base, base_subs, base_events] = run(false);
  auto [fast, fast_subs, fast_events] = run(true);

  // Identical workloads...
  ASSERT_EQ(base_events.size(), fast_events.size());
  // ...identical delivery sets...
  const auto base_set = delivered(*base.sys);
  EXPECT_EQ(base_set, delivered(*fast.sys));
  // ...and both equal brute force.
  std::multiset<DeliveryKey> expected;
  for (std::size_t i = 0; i < base_events.size(); ++i) {
    for (const auto& o : base_subs) {
      if (o.sub.matches(base_events[i].point)) {
        expected.insert({std::uint64_t(i + 1), o.host, o.iid});
      }
    }
  }
  EXPECT_EQ(base_set, expected);

  // The fast lane actually engaged: cache hits happened, frames coalesced,
  // and batching paid fewer packet headers than one-frame-per-message.
  const auto cc = fast.sys->route_cache_counters();
  EXPECT_GT(cc.hits, 0u);
  const auto bc = fast.sys->batch_counters();
  EXPECT_GT(bc.chunks, bc.frames);
  EXPECT_GT(bc.header_bytes_saved, 0u);
  const auto base_bc = base.sys->batch_counters();
  EXPECT_EQ(base_bc.header_bytes_saved, 0u);
}

TEST(FastLane, DeliveryParityUnderChurnWithReliability) {
  constexpr std::size_t kHosts = 40;
  constexpr std::size_t kSubscriberHosts = 20;  // hosts 0..19 subscribe
  struct Owned {
    net::HostIndex host;
    std::uint32_t iid;
    pubsub::Subscription sub;
  };

  auto run = [&](bool fast) {
    auto s = make_stack(kHosts, 37, {.reliable = true, .replicas = 2,
                                     .cache = fast, .batch = fast});
    workload::WorkloadGenerator gen(workload::tiny_spec(), 41);
    core::SchemeOptions opt;
    opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
    const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
    std::vector<Owned> subs;
    Rng rng(43);
    for (int i = 0; i < 120; ++i) {
      const auto host = net::HostIndex(rng.index(kSubscriberHosts));
      const auto sub = gen.make_subscription();
      subs.push_back({host, s.sys->subscribe(host, scheme, sub).iid, sub});
    }
    s.sim->run();

    // Interleave crashes of non-subscriber nodes with publish bursts; the
    // ring is never repaired, so cached routes and routing tables keep
    // pointing at dead hops — reliability has to mask all of it.
    std::vector<pubsub::Event> events;
    for (int round = 0; round < 6; ++round) {
      const auto victim =
          net::HostIndex(kSubscriberHosts +
                         rng.index(kHosts - kSubscriberHosts));
      if (s.net->alive(victim)) s.chord->fail(victim);
      for (int b = 0; b < 3; ++b) {
        const auto pub = net::HostIndex(rng.index(kSubscriberHosts));
        auto e = gen.make_event();
        events.push_back(e);
        s.sys->publish(pub, scheme, std::move(e));
      }
      s.sim->run();
    }
    s.sys->finalize_events();
    return std::make_tuple(std::move(s), std::move(subs),
                           std::move(events));
  };

  auto [base, base_subs, base_events] = run(false);
  auto [fast, fast_subs, fast_events] = run(true);

  const auto base_set = delivered(*base.sys);
  const auto fast_set = delivered(*fast.sys);
  EXPECT_EQ(base_set, fast_set);

  // Brute force over the (always-alive) subscribers.
  std::multiset<DeliveryKey> expected;
  for (std::size_t i = 0; i < base_events.size(); ++i) {
    for (const auto& o : base_subs) {
      if (o.sub.matches(base_events[i].point)) {
        expected.insert({std::uint64_t(i + 1), o.host, o.iid});
      }
    }
  }
  EXPECT_EQ(base_set, expected);
  EXPECT_EQ(fast_set, expected);

  // No duplicate deliveries despite retries + reroutes + batched frames.
  std::set<DeliveryKey> unique(fast_set.begin(), fast_set.end());
  EXPECT_EQ(unique.size(), fast_set.size());
}

}  // namespace
}  // namespace hypersub
