// HyperSub core tests: zone state, subschemes, subscription installation,
// event delivery, and the exactness property — the set of deliveries the
// distributed protocol produces equals brute-force matching, with no
// duplicates, across bases / rotation / subschemes / ancestor-probing.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <tuple>

#include "chord/chord_net.hpp"
#include "lph/lph.hpp"
#include "core/hypersub_system.hpp"
#include "core/load_balancer.hpp"
#include "net/topology.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub::core {
namespace {

// ---------------------------------------------------------------------------
// ZoneState unit tests
// ---------------------------------------------------------------------------

StoredSub stored(Id nid, std::uint32_t iid, const HyperRect& r) {
  return StoredSub{SubId{nid, iid, SubIdKind::kSubscriber},
                   pubsub::Subscription(r), r};
}

TEST(ZoneState, SummaryGrowsWithSubscriptions) {
  ZoneState z(ZoneAddr{});
  EXPECT_TRUE(z.add_subscription(stored(1, 1, HyperRect({{1, 2}, {1, 2}}))));
  EXPECT_EQ(z.summary(), HyperRect({{1, 2}, {1, 2}}));
  // Inside the hull: no growth.
  EXPECT_FALSE(z.add_subscription(stored(2, 1, HyperRect({{1, 1.5}, {1, 2}}))));
  EXPECT_TRUE(z.add_subscription(stored(3, 1, HyperRect({{3, 4}, {1, 2}}))));
  EXPECT_EQ(z.summary(), HyperRect({{1, 4}, {1, 2}}));
  EXPECT_EQ(z.subscription_count(), 3u);
  EXPECT_EQ(z.entry_count(), 3u);
}

TEST(ZoneState, RemoveRecomputesSummary) {
  ZoneState z(ZoneAddr{});
  z.add_subscription(stored(1, 1, HyperRect({{1, 2}, {1, 2}})));
  z.add_subscription(stored(2, 5, HyperRect({{5, 6}, {1, 2}})));
  const auto removed =
      z.remove_subscription(SubId{2, 5, SubIdKind::kSubscriber});
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(z.summary(), HyperRect({{1, 2}, {1, 2}}));
  EXPECT_FALSE(
      z.remove_subscription(SubId{9, 9, SubIdKind::kSubscriber}).has_value());
}

TEST(ZoneState, ParentPieceReplaceShrinkClear) {
  ZoneState z(ZoneAddr{});
  EXPECT_TRUE(z.set_parent_piece(HyperRect({{0, 4}, {0, 4}}), 77));
  EXPECT_EQ(z.summary(), HyperRect({{0, 4}, {0, 4}}));
  // Shrink.
  EXPECT_TRUE(z.set_parent_piece(HyperRect({{0, 2}, {0, 2}}), 77));
  EXPECT_EQ(z.summary(), HyperRect({{0, 2}, {0, 2}}));
  // Clear via empty rect.
  EXPECT_TRUE(z.set_parent_piece(HyperRect{}, 77));
  EXPECT_TRUE(z.summary().empty());
  EXPECT_FALSE(z.has_parent_piece());
}

TEST(ZoneState, MatchProducesAllKinds) {
  ZoneState z(ZoneAddr{});
  z.add_subscription(stored(1, 1, HyperRect({{0, 10}, {0, 10}})));
  z.add_subscription(stored(2, 1, HyperRect({{50, 60}, {0, 10}})));
  z.set_parent_piece(HyperRect({{0, 5}, {0, 5}}), 1234);
  z.add_migrated_bucket(
      MigratedBucket{HyperRect({{0, 3}, {0, 3}}),
                     {},
                     SubId{99, 7, SubIdKind::kMigrated}});
  std::vector<SubId> out;
  z.match(Point{2, 2}, Point{2, 2}, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].target, 1u);                      // matching sub
  EXPECT_EQ(out[1].kind, SubIdKind::kZone);          // parent piece
  EXPECT_EQ(out[1].target, 1234u);
  EXPECT_EQ(out[2].kind, SubIdKind::kMigrated);      // bucket
  out.clear();
  z.match(Point{55, 2}, Point{55, 2}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].target, 2u);
}

TEST(ZoneState, ExtractByArcWraps) {
  ZoneState z(ZoneAddr{});
  z.add_subscription(stored(10, 1, HyperRect({{0, 1}})));
  z.add_subscription(stored(20, 1, HyperRect({{0, 1}})));
  z.add_subscription(stored(~Id{0} - 5, 1, HyperRect({{0, 1}})));
  // Arc wrapping past zero: [2^64-10, 15) catches the last and id 10.
  const auto got = z.extract_subscribers_in_arc(~Id{0} - 10, 15);
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(z.subscription_count(), 1u);
  EXPECT_EQ(z.subscriptions()[0].owner.target, 20u);
}

TEST(SubIdTest, ToStringAndHash) {
  const SubId a{1, 2, SubIdKind::kSubscriber};
  const SubId b{1, 2, SubIdKind::kZone};
  EXPECT_NE(SubIdHash{}(a), SubIdHash{}(b));
  EXPECT_EQ(a.to_string(), "sub(1,2)");
}

// ---------------------------------------------------------------------------
// Subscheme tests
// ---------------------------------------------------------------------------

pubsub::Scheme scheme4() {
  return pubsub::Scheme("s4", {{"a", {0, 10}},
                               {"b", {0, 10}},
                               {"c", {0, 10}},
                               {"d", {0, 10}}});
}

TEST(Subscheme, ProjectionRoundTrip) {
  const auto s = scheme4();
  Subscheme ss("s4#0", {1, 3}, s, {1, 20}, true);
  const HyperRect full({{0, 1}, {2, 3}, {4, 5}, {6, 7}});
  EXPECT_EQ(ss.project(full), HyperRect({{2, 3}, {6, 7}}));
  EXPECT_EQ(ss.project(Point{0, 2, 4, 6}), (Point{2, 6}));
}

TEST(Subscheme, CoversConstraints) {
  const auto s = scheme4();
  Subscheme ss("s4#0", {1, 3}, s, {1, 20}, true);
  // Constrains only b.
  pubsub::Predicate p1{1, {2, 3}};
  const auto sub1 = pubsub::Subscription::from_predicates(s, std::span(&p1, 1));
  EXPECT_TRUE(ss.covers_constraints(s, sub1));
  pubsub::Predicate p2{0, {2, 3}};
  const auto sub2 = pubsub::Subscription::from_predicates(s, std::span(&p2, 1));
  EXPECT_FALSE(ss.covers_constraints(s, sub2));
  EXPECT_EQ(ss.constrained_overlap(s, sub1), 1u);
  EXPECT_EQ(ss.constrained_overlap(s, sub2), 0u);
}

TEST(SchemeRuntime, DefaultSingleSubscheme) {
  SchemeOptions opt;
  opt.zone_cfg = {1, 20};
  const SchemeRuntime rt(scheme4(), opt);
  EXPECT_EQ(rt.subscheme_count(), 1u);
  EXPECT_EQ(rt.subscheme(0).attributes().size(), 4u);
}

TEST(SchemeRuntime, ChoosesSmallestCoveringSubscheme) {
  SchemeOptions opt;
  opt.zone_cfg = {1, 20};
  opt.subschemes = {{0, 1, 2, 3}, {0, 1}, {2}};
  const SchemeRuntime rt(scheme4(), opt);
  pubsub::Predicate pc{2, {1, 2}};
  const auto sub_c =
      pubsub::Subscription::from_predicates(rt.scheme(), std::span(&pc, 1));
  EXPECT_EQ(rt.choose_subscheme(sub_c), 2u);
  pubsub::Predicate pab[] = {{0, {1, 2}}, {1, {1, 2}}};
  const auto sub_ab = pubsub::Subscription::from_predicates(rt.scheme(), pab);
  EXPECT_EQ(rt.choose_subscheme(sub_ab), 1u);
  pubsub::Predicate pall[] = {{0, {1, 2}}, {2, {1, 2}}};
  const auto sub_ac = pubsub::Subscription::from_predicates(rt.scheme(), pall);
  EXPECT_EQ(rt.choose_subscheme(sub_ac), 0u);
}

TEST(SchemeRuntime, RotationDiffersAcrossSubschemes) {
  SchemeOptions opt;
  opt.zone_cfg = {1, 20};
  opt.subschemes = {{0, 1}, {2, 3}};
  const SchemeRuntime rt(scheme4(), opt);
  EXPECT_NE(rt.subscheme(0).rotation(), rt.subscheme(1).rotation());
}

// ---------------------------------------------------------------------------
// End-to-end: delivery == brute force
// ---------------------------------------------------------------------------

struct Stack {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<chord::ChordNet> chord;
  std::unique_ptr<HyperSubSystem> sys;
};

Stack make_stack(std::size_t n, HyperSubSystem::Config sc = {},
                 std::uint64_t seed = 1) {
  Stack s;
  net::KingLikeTopology::Params tp;
  tp.hosts = n;
  tp.seed = seed;
  s.topo = std::make_unique<net::KingLikeTopology>(tp);
  s.sim = std::make_unique<sim::Simulator>();
  s.net = std::make_unique<net::Network>(*s.sim, *s.topo);
  chord::ChordNet::Params cp;
  cp.seed = seed;
  s.chord = std::make_unique<chord::ChordNet>(*s.net, cp);
  sc.bootstrap = BootstrapMode::kOracle;
  s.sys = std::make_unique<HyperSubSystem>(*s.chord, sc);
  return s;
}

struct ExactnessCase {
  int base_bits;
  bool rotate;
  bool ancestor_probing;
  bool subschemes;
  const char* name;
};

class ExactnessTest : public ::testing::TestWithParam<ExactnessCase> {};

TEST_P(ExactnessTest, DeliveriesEqualBruteForce) {
  const auto param = GetParam();
  HyperSubSystem::Config sc;
  sc.ancestor_probing = param.ancestor_probing;
  auto s = make_stack(80, sc, 3);

  workload::WorkloadGenerator gen(workload::table1_spec(), 17);
  SchemeOptions opt;
  opt.zone_cfg = {param.base_bits, 20};
  opt.rotate = param.rotate;
  if (param.subschemes) opt.subschemes = {{0, 1}, {2, 3}};
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);

  // Install subscriptions: mix of full and partial.
  struct Owned {
    net::HostIndex host;
    std::uint32_t iid;
    pubsub::Subscription sub;
  };
  std::vector<Owned> subs;
  Rng rng(23);
  for (int i = 0; i < 240; ++i) {
    const auto host = net::HostIndex(rng.index(80));
    pubsub::Subscription sub;
    const auto roll = rng.index(4);
    if (roll == 0) {
      sub = gen.make_partial_subscription({0, 1});
    } else if (roll == 1) {
      sub = gen.make_partial_subscription({2});
    } else {
      sub = gen.make_subscription();
    }
    const auto iid = s.sys->subscribe(host, scheme, sub).iid;
    subs.push_back({host, iid, sub});
  }
  s.sim->run();

  // Publish events and compare against brute force.
  std::vector<pubsub::Event> events;
  std::vector<std::uint64_t> seqs;
  for (int i = 0; i < 120; ++i) {
    auto e = gen.make_event();
    const auto pub = net::HostIndex(rng.index(80));
    seqs.push_back(s.sys->publish(pub, scheme, e));
    events.push_back(e);
  }
  s.sim->run();
  s.sys->finalize_events();

  // Group actual deliveries by event.
  std::map<std::uint64_t, std::multiset<std::pair<std::size_t, std::uint32_t>>>
      actual;
  for (const auto& d : s.sys->deliveries()) {
    actual[d.event_seq].insert({d.subscriber, d.iid});
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    std::multiset<std::pair<std::size_t, std::uint32_t>> expected;
    for (const auto& o : subs) {
      if (o.sub.matches(events[i].point)) expected.insert({o.host, o.iid});
    }
    EXPECT_EQ(actual[seqs[i]], expected)
        << param.name << ": event " << i << " mismatch (duplicates or "
        << "missing deliveries)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ExactnessTest,
    ::testing::Values(
        ExactnessCase{1, true, false, false, "base2"},
        ExactnessCase{2, true, false, false, "base4"},
        ExactnessCase{4, true, false, false, "base16"},
        ExactnessCase{1, false, false, false, "base2_norot"},
        ExactnessCase{1, true, true, false, "base2_probing"},
        ExactnessCase{1, true, false, true, "base2_subschemes"},
        ExactnessCase{2, true, true, true, "base4_probing_subschemes"}),
    [](const auto& tinfo) { return std::string(tinfo.param.name); });

TEST(HyperSub, EventMetricsRecorded) {
  auto s = make_stack(40);
  workload::WorkloadGenerator gen(workload::tiny_spec(), 5);
  SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  for (net::HostIndex h = 0; h < 40; ++h) {
    s.sys->subscribe(h, scheme, gen.make_subscription());
  }
  s.sim->run();
  for (int i = 0; i < 30; ++i) {
    s.sys->publish(net::HostIndex(i % 40), scheme, gen.make_event());
  }
  s.sim->run();
  s.sys->finalize_events();
  EXPECT_EQ(s.sys->event_metrics().count(), 30u);
  for (const auto& r : s.sys->event_metrics().records()) {
    EXPECT_GE(r.max_hops, 0);
    EXPECT_GE(r.bandwidth_bytes, 0u);
    if (r.matched > 0) {
      EXPECT_GT(r.max_latency_ms, 0.0);
      EXPECT_GT(r.bandwidth_bytes, 0u);
    }
  }
  EXPECT_EQ(s.sys->total_subscriptions(), 40u);
}

TEST(HyperSub, UnsubscribeStopsDelivery) {
  auto s = make_stack(30);
  workload::WorkloadGenerator gen(workload::tiny_spec(), 6);
  SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  // A subscription that matches everything.
  const pubsub::Subscription all(gen.scheme().domain());
  const auto handle = s.sys->subscribe(5, scheme, all);
  s.sim->run();

  s.sys->publish(9, scheme, gen.make_event());
  s.sim->run();
  s.sys->finalize_events();
  EXPECT_EQ(s.sys->deliveries().size(), 1u);

  s.sys->unsubscribe(handle);
  s.sim->run();
  s.sys->publish(9, scheme, gen.make_event());
  s.sim->run();
  s.sys->finalize_events();
  EXPECT_EQ(s.sys->deliveries().size(), 1u);  // no new delivery
  EXPECT_EQ(s.sys->total_subscriptions(), 0u);
}

TEST(HyperSub, MultipleSchemesCoexist) {
  auto s = make_stack(40);
  workload::WorkloadGenerator g1(workload::tiny_spec(), 7);
  auto spec2 = workload::tiny_spec();
  spec2.scheme_name = "tiny2";
  workload::WorkloadGenerator g2(spec2, 8);
  SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto s1 = s.sys->add_scheme(g1.scheme(), opt);
  const auto s2 = s.sys->add_scheme(g2.scheme(), opt);
  ASSERT_NE(s1, s2);

  const pubsub::Subscription all1(g1.scheme().domain());
  const pubsub::Subscription all2(g2.scheme().domain());
  s.sys->subscribe(1, s1, all1);
  s.sys->subscribe(2, s2, all2);
  s.sim->run();

  s.sys->publish(3, s1, g1.make_event());
  s.sim->run();
  s.sys->finalize_events();
  // Only the scheme-1 subscriber got it.
  ASSERT_EQ(s.sys->deliveries().size(), 1u);
  EXPECT_EQ(s.sys->deliveries()[0].subscriber, 1u);

  s.sys->publish(3, s2, g2.make_event());
  s.sim->run();
  s.sys->finalize_events();
  ASSERT_EQ(s.sys->deliveries().size(), 2u);
  EXPECT_EQ(s.sys->deliveries()[1].subscriber, 2u);
}

TEST(HyperSub, PublisherIsAlsoSubscriber) {
  auto s = make_stack(20);
  workload::WorkloadGenerator gen(workload::tiny_spec(), 9);
  SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  s.sys->subscribe(4, scheme, pubsub::Subscription(gen.scheme().domain()));
  s.sim->run();
  s.sys->publish(4, scheme, gen.make_event());
  s.sim->run();
  s.sys->finalize_events();
  ASSERT_EQ(s.sys->deliveries().size(), 1u);
  EXPECT_EQ(s.sys->deliveries()[0].subscriber, 4u);
}

// ---------------------------------------------------------------------------
// Load balancing
// ---------------------------------------------------------------------------

TEST(LoadBalancing, MigrationPreservesExactness) {
  auto s = make_stack(60, {}, 11);
  workload::WorkloadGenerator gen(workload::table1_spec(), 19);
  SchemeOptions opt;
  opt.zone_cfg = {1, 20};
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);

  struct Owned {
    net::HostIndex host;
    std::uint32_t iid;
    pubsub::Subscription sub;
  };
  std::vector<Owned> subs;
  Rng rng(29);
  for (int i = 0; i < 300; ++i) {
    const auto host = net::HostIndex(rng.index(60));
    const auto sub = gen.make_subscription();
    const auto iid = s.sys->subscribe(host, scheme, sub).iid;
    subs.push_back({host, iid, sub});
  }
  s.sim->run();

  LoadBalancer::Config lc;
  lc.delta = 0.05;
  lc.min_load = 2;
  LoadBalancer lb(*s.sys, lc);
  lb.run_round();
  lb.run_round();
  EXPECT_GT(lb.migrated_count(), 0u);

  std::vector<pubsub::Event> events;
  std::vector<std::uint64_t> seqs;
  for (int i = 0; i < 80; ++i) {
    auto e = gen.make_event();
    seqs.push_back(s.sys->publish(net::HostIndex(rng.index(60)), scheme, e));
    events.push_back(e);
  }
  s.sim->run();
  s.sys->finalize_events();

  std::map<std::uint64_t, std::multiset<std::pair<std::size_t, std::uint32_t>>>
      actual;
  for (const auto& d : s.sys->deliveries()) {
    actual[d.event_seq].insert({d.subscriber, d.iid});
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    std::multiset<std::pair<std::size_t, std::uint32_t>> expected;
    for (const auto& o : subs) {
      if (o.sub.matches(events[i].point)) expected.insert({o.host, o.iid});
    }
    EXPECT_EQ(actual[seqs[i]], expected) << "event " << i;
  }
}

TEST(LoadBalancing, ReducesMaxLoad) {
  auto s = make_stack(60, {}, 13);
  workload::WorkloadGenerator gen(workload::table1_spec(), 21);
  SchemeOptions opt;
  opt.zone_cfg = {1, 20};
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    s.sys->subscribe(net::HostIndex(rng.index(60)), scheme,
                     gen.make_subscription());
  }
  s.sim->run();

  const auto before = s.sys->node_loads();
  const std::size_t max_before =
      *std::max_element(before.begin(), before.end());

  LoadBalancer::Config lc;
  lc.delta = 0.1;
  lc.min_load = 4;
  LoadBalancer lb(*s.sys, lc);
  for (int i = 0; i < 3; ++i) lb.run_round();

  const auto after = s.sys->node_loads();
  const std::size_t max_after = *std::max_element(after.begin(), after.end());
  EXPECT_LT(max_after, max_before);
  EXPECT_GT(lb.migrated_count(), 0u);
}

// Referenced from zone_state.hpp: the splitmix64 ZoneAddrHash must spread
// a realistic zone population (structured codes: shared prefixes, sibling
// zones, a handful of subschemes) at least as well as — in practice far
// better than — the old xor-of-std::hash formulation, whose identity
// std::hash let structured code/level patterns collide into bucket runs.
TEST(ZoneAddrHashQuality, MaxBucketLoadBeatsOldXorHash) {
  workload::WorkloadGenerator gen(workload::table1_spec(), 77);
  const lph::ZoneSystem zsys(gen.scheme().domain(), {1, 20});

  std::set<std::tuple<std::uint32_t, std::uint32_t, Id, int>> seen;
  std::vector<ZoneAddr> addrs;
  for (int i = 0; i < 40000; ++i) {
    const auto lph = lph::hash_subscription(
        zsys, gen.make_subscription().range(), /*rotation=*/0);
    // The ancestor chain mirrors the surrogate zones piece propagation
    // creates, which is what a node's zone map actually holds.
    lph::Zone z = lph.zone;
    for (;;) {
      const std::uint32_t ssi = std::uint32_t(i % 3);
      if (seen.insert({0u, ssi, z.code, z.level}).second) {
        addrs.push_back(ZoneAddr{0u, ssi, z});
      }
      if (z.level == 0) break;
      z = zsys.parent(z);
    }
  }
  ASSERT_GT(addrs.size(), 1000u);

  // Power-of-two bucket table at a realistic load factor.
  std::size_t buckets = 1;
  while (buckets < addrs.size() * 2) buckets <<= 1;

  const auto max_load = [&](auto&& hash) {
    std::vector<std::size_t> load(buckets, 0);
    std::size_t worst = 0;
    for (const auto& a : addrs) {
      worst = std::max(worst, ++load[hash(a) & (buckets - 1)]);
    }
    return worst;
  };

  const std::size_t old_worst = max_load([](const ZoneAddr& a) {
    // The pre-splitmix64 hash: two xor'ed std::hash<uint64_t> values
    // (identity on libstdc++), level ignored by the mix structure.
    return std::hash<std::uint64_t>{}(a.zone.code) ^
           std::hash<std::uint64_t>{}((std::uint64_t(a.scheme) << 32) |
                                      std::uint64_t(a.subscheme)) ^
           std::hash<std::uint64_t>{}(std::uint64_t(a.zone.level) << 40);
  });
  const std::size_t new_worst = max_load(ZoneAddrHash{});

  // At load factor 0.5 a uniform hash lands a max bucket load of ~4-6 for
  // this population size (Poisson tail); the structured old hash stacks
  // whole sibling runs into shared buckets.
  EXPECT_LE(new_worst, 8u);
  EXPECT_LE(new_worst, old_worst);
  RecordProperty("old_max_bucket_load", std::to_string(old_worst));
  RecordProperty("new_max_bucket_load", std::to_string(new_worst));
}

}  // namespace
}  // namespace hypersub::core
