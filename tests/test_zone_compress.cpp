// Path-compressed zone-chain tests. The compressed tree must be an
// invisible representation change: every observable — the per-zone content
// digest (materialized + chain-implicit zones), the delivery sets, the
// zone invariants, join/leave transfer, checkpoint images, and the
// parallel byte-identity contract — matches the uncompressed tree, while
// the zone-tree footprint shrinks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "net/topology.hpp"
#include "runner/checkpoint.hpp"
#include "trace/tracer.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub {
namespace {

struct StackOpts {
  std::size_t hosts = 32;
  std::uint64_t seed = 1;
  unsigned threads = 1;
  double lookahead = 0.0;
  bool compress = true;
  core::BootstrapMode bootstrap = core::BootstrapMode::kOracle;
};

struct Stack {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<chord::ChordNet> chord;
  std::unique_ptr<core::HyperSubSystem> sys;
  std::unique_ptr<workload::WorkloadGenerator> gen;
  std::uint32_t scheme = 0;
};

Stack make_stack(const StackOpts& o) {
  Stack s;
  net::KingLikeTopology::Params tp;
  tp.hosts = o.hosts;
  tp.seed = o.seed;
  s.topo = std::make_unique<net::KingLikeTopology>(tp);
  s.sim = std::make_unique<sim::Simulator>();
  s.sim->set_threads(o.threads);
  s.sim->set_lookahead(o.lookahead);
  s.net = std::make_unique<net::Network>(*s.sim, *s.topo);
  chord::ChordNet::Params cp;
  cp.seed = o.seed;
  s.chord = std::make_unique<chord::ChordNet>(*s.net, cp);
  core::HyperSubSystem::Config sc;
  sc.bootstrap = o.bootstrap;
  sc.compress_zone_chains = o.compress;
  s.sys = std::make_unique<core::HyperSubSystem>(*s.chord, sc);
  s.gen = std::make_unique<workload::WorkloadGenerator>(workload::tiny_spec(),
                                                        o.seed + 100);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  s.scheme = s.sys->add_scheme(s.gen->scheme(), opt);
  return s;
}

using DeliveryRow = std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>;
std::vector<DeliveryRow> delivery_set(const Stack& s) {
  std::vector<DeliveryRow> out;
  for (const auto& d : s.sys->deliveries()) {
    out.emplace_back(d.event_seq, std::uint64_t(d.subscriber), d.iid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t total_chains(const Stack& s) {
  std::size_t n = 0;
  for (net::HostIndex h = 0; h < s.topo->size(); ++h) {
    n += s.sys->node(h).chains().size();
  }
  return n;
}

core::HyperSubNode::ZoneMemoryBreakdown total_breakdown(const Stack& s) {
  core::HyperSubNode::ZoneMemoryBreakdown sum{};
  for (net::HostIndex h = 0; h < s.topo->size(); ++h) {
    const auto mb = s.sys->node(h).memory_breakdown();
    sum.materialized_zones += mb.materialized_zones;
    sum.chain_records += mb.chain_records;
    sum.implicit_zones += mb.implicit_zones;
    sum.zone_bytes += mb.zone_bytes;
    sum.chain_bytes += mb.chain_bytes;
    sum.key_index_bytes += mb.key_index_bytes;
    sum.sub_bytes += mb.sub_bytes;
  }
  return sum;
}

// --- compressed vs uncompressed parity ------------------------------------

// Randomized subscribe/unsubscribe churn, replayed move-for-move on a
// compressed and an uncompressed stack. Every round the semantic zone
// digest (which folds chain-implicit zones through synthesized
// fingerprints) must agree, and both trees must pass their own invariant
// audits. Unsubscribes shrink summaries, so the rounds exercise chain
// reshape, dissolve, interior split, and opportunistic re-merge — at
// whatever boundary levels the workload happens to land on, across seeds.
TEST(ZoneCompress, ParityUnderSubscriptionChurn) {
  for (const std::uint64_t seed : {3ull, 11ull, 27ull}) {
    Stack on = make_stack({.seed = seed, .compress = true});
    Stack off = make_stack({.seed = seed, .compress = false});

    Rng rng(seed * 7 + 1);
    std::vector<core::SubscriptionHandle> hon, hoff;
    const auto parity = [&](const char* where) {
      EXPECT_TRUE(on.sys->check_zone_invariants()) << where << " seed=" << seed;
      EXPECT_TRUE(off.sys->check_zone_invariants()) << where << " seed=" << seed;
      EXPECT_EQ(on.sys->zone_content_digest(), off.sys->zone_content_digest())
          << where << " seed=" << seed;
    };

    // Round 1: dense install.
    for (int i = 0; i < 150; ++i) {
      const net::HostIndex h = net::HostIndex(rng.index(32));
      const auto sub_on = on.gen->make_subscription();
      const auto sub_off = off.gen->make_subscription();
      hon.push_back(on.sys->subscribe(h, on.scheme, sub_on));
      hoff.push_back(off.sys->subscribe(h, off.scheme, sub_off));
    }
    on.sim->run();
    off.sim->run();
    parity("install");
    EXPECT_GT(total_chains(on), 0u) << "seed=" << seed;
    EXPECT_EQ(total_chains(off), 0u) << "seed=" << seed;

    // Round 2: remove every other subscription — summaries shrink, pieces
    // retract, chains reshape and re-merge.
    for (std::size_t i = 0; i < hon.size(); i += 2) {
      on.sys->unsubscribe(hon[i]);
      off.sys->unsubscribe(hoff[i]);
    }
    on.sim->run();
    off.sim->run();
    parity("half-removal");

    // Round 3: reinstall into the reshaped tree (splits chains again).
    for (int i = 0; i < 60; ++i) {
      const net::HostIndex h = net::HostIndex(rng.index(32));
      const auto sub_on = on.gen->make_subscription();
      const auto sub_off = off.gen->make_subscription();
      hon.push_back(on.sys->subscribe(h, on.scheme, sub_on));
      hoff.push_back(off.sys->subscribe(h, off.scheme, sub_off));
    }
    on.sim->run();
    off.sim->run();
    parity("reinstall");

    // Identical event feed -> identical delivery sets.
    for (int i = 0; i < 20; ++i) {
      const net::HostIndex pub = net::HostIndex(rng.index(32));
      const auto ev_on = on.gen->make_event();
      const auto ev_off = off.gen->make_event();
      on.sys->publish(pub, on.scheme, ev_on);
      off.sys->publish(pub, off.scheme, ev_off);
    }
    on.sim->run();
    off.sim->run();
    on.sys->finalize_events();
    off.sys->finalize_events();
    EXPECT_EQ(delivery_set(on), delivery_set(off)) << "seed=" << seed;
  }
}

// Tearing everything down must dissolve the piece skeleton: after the last
// unsubscribe drains, no chain record (and no piece-bearing materialized
// zone) survives, on either representation.
TEST(ZoneCompress, FullTeardownDissolvesChains) {
  Stack on = make_stack({.seed = 9, .compress = true});
  Stack off = make_stack({.seed = 9, .compress = false});
  Rng rng(41);
  std::vector<core::SubscriptionHandle> hon, hoff;
  for (int i = 0; i < 100; ++i) {
    const net::HostIndex h = net::HostIndex(rng.index(32));
    const auto sub_on = on.gen->make_subscription();
    const auto sub_off = off.gen->make_subscription();
    hon.push_back(on.sys->subscribe(h, on.scheme, sub_on));
    hoff.push_back(off.sys->subscribe(h, off.scheme, sub_off));
  }
  on.sim->run();
  off.sim->run();
  ASSERT_GT(total_chains(on), 0u);

  for (std::size_t i = 0; i < hon.size(); ++i) {
    on.sys->unsubscribe(hon[i]);
    off.sys->unsubscribe(hoff[i]);
  }
  on.sim->run();
  off.sim->run();
  EXPECT_TRUE(on.sys->check_zone_invariants());
  EXPECT_TRUE(off.sys->check_zone_invariants());
  EXPECT_EQ(total_chains(on), 0u);
  EXPECT_EQ(on.sys->zone_content_digest(), off.sys->zone_content_digest());
}

// --- join/leave chain transfer --------------------------------------------

// A graceful leave serializes the leaver's chains (split at movedness run
// boundaries) to the successor; a protocol rejoin pulls them back. The
// host-independent content digest must ride through both handovers, and
// the invariant audit must hold at every stop.
TEST(ZoneCompress, JoinLeaveChainTransfer) {
  constexpr net::HostIndex kNode = 9;
  Stack s = make_stack({.seed = 5, .compress = true});
  Rng rng(29);
  for (int i = 0; i < 120; ++i) {
    s.sys->subscribe(net::HostIndex(rng.index(32)), s.scheme,
                     s.gen->make_subscription());
  }
  s.sim->run();
  ASSERT_GT(total_chains(s), 0u);
  const std::uint64_t d0 = s.sys->zone_content_digest();

  s.sys->leave_node(kNode);
  s.sim->run();
  EXPECT_EQ(s.sys->join_stats().leaves_completed, 1u);
  EXPECT_TRUE(s.sys->check_zone_invariants());
  EXPECT_EQ(s.sys->zone_content_digest(), d0);

  s.chord->start_maintenance();
  s.sys->join_node(kNode, 0);
  s.sim->run_until(s.sim->now() + 30000.0);
  s.chord->stop_maintenance();
  s.sim->run();
  EXPECT_FALSE(s.sys->transfer_active());
  EXPECT_EQ(s.sys->join_stats().joins_committed, 1u);
  EXPECT_GT(s.sys->join_stats().zones_transferred, 0u);
  EXPECT_TRUE(s.sys->check_zone_invariants());
  EXPECT_EQ(s.sys->zone_content_digest(), d0);
}

// --- checkpoint round-trip ------------------------------------------------

// A checkpoint taken from a compressed tree restores into an identical
// tree: same digest, same invariants, and an immediate re-checkpoint of
// the restored stack reproduces the blob byte-for-byte.
TEST(ZoneCompress, CheckpointRoundTrip) {
  const StackOpts base{.seed = 13, .compress = true};
  Stack s = make_stack(base);
  Rng rng(47);
  std::vector<std::pair<net::HostIndex, pubsub::Event>> events;
  for (int i = 0; i < 90; ++i) {
    s.sys->subscribe(net::HostIndex(rng.index(32)), s.scheme,
                     s.gen->make_subscription());
  }
  for (int i = 0; i < 15; ++i) {
    events.emplace_back(net::HostIndex(rng.index(32)), s.gen->make_event());
  }
  s.sim->run();
  ASSERT_GT(total_chains(s), 0u);
  const auto blob = runner::checkpoint(*s.sys);

  StackOpts ropts = base;
  ropts.bootstrap = core::BootstrapMode::kNone;
  Stack r = make_stack(ropts);
  runner::restore(*r.sys, blob);
  EXPECT_TRUE(r.sys->check_zone_invariants());
  EXPECT_EQ(r.sys->zone_content_digest(), s.sys->zone_content_digest());
  EXPECT_EQ(total_chains(r), total_chains(s));
  EXPECT_EQ(runner::checkpoint(*r.sys), blob);

  // The restored tree behaves identically under an identical event feed.
  for (const auto& [pub, ev] : events) {
    s.sys->publish(pub, s.scheme, ev);
    r.sys->publish(pub, r.scheme, ev);
  }
  s.sim->run();
  r.sim->run();
  s.sys->finalize_events();
  r.sys->finalize_events();
  EXPECT_EQ(delivery_set(s), delivery_set(r));
}

// An image written by an uncompressed run (all zones materialized, empty
// chain sections) must restore cleanly into a compression-enabled system:
// the representations interoperate at the wire level, and the restored
// tree still matches the writer's digest.
TEST(ZoneCompress, UncompressedImageRestoresIntoCompressedSystem) {
  const StackOpts wopts{.seed = 17, .compress = false};
  Stack w = make_stack(wopts);
  Rng rng(53);
  for (int i = 0; i < 80; ++i) {
    w.sys->subscribe(net::HostIndex(rng.index(32)), w.scheme,
                     w.gen->make_subscription());
  }
  w.sim->run();
  const auto blob = runner::checkpoint(*w.sys);

  StackOpts ropts{.seed = 17, .compress = true};
  ropts.bootstrap = core::BootstrapMode::kNone;
  Stack r = make_stack(ropts);
  runner::restore(*r.sys, blob);
  EXPECT_TRUE(r.sys->check_zone_invariants());
  EXPECT_EQ(r.sys->zone_content_digest(), w.sys->zone_content_digest());
}

// --- parallel determinism -------------------------------------------------

// The byte-identity contract survives compression: the same scripted run
// at 1/2/4/8 worker threads produces byte-identical checkpoints and
// identical delivery sets.
TEST(ZoneCompress, ParallelDeterminismWithCompression) {
  std::vector<std::uint8_t> reference;
  std::vector<DeliveryRow> ref_deliveries;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    Stack s = make_stack({.seed = 21, .threads = threads, .lookahead = 5.0,
                          .compress = true});
    Rng rng(59);
    std::vector<std::pair<net::HostIndex, pubsub::Subscription>> subs;
    for (int i = 0; i < 70; ++i) {
      subs.emplace_back(net::HostIndex(rng.index(32)),
                        s.gen->make_subscription());
    }
    std::vector<std::pair<net::HostIndex, pubsub::Event>> events;
    for (int i = 0; i < 16; ++i) {
      events.emplace_back(net::HostIndex(rng.index(32)), s.gen->make_event());
    }
    for (const auto& [h, sub] : subs) s.sys->subscribe(h, s.scheme, sub);
    s.sim->run();
    for (std::size_t i = 0; i < events.size(); ++i) {
      const auto& [pub, ev] = events[i];
      s.sim->schedule_at(20000.0 + 5000.0 * double(i),
                         [&s, pub, ev] { s.sys->publish(pub, s.scheme, ev); });
    }
    s.sim->run();
    s.sys->finalize_events();
    EXPECT_GT(total_chains(s), 0u) << "threads=" << threads;
    const auto blob = runner::checkpoint(*s.sys);
    const auto del = delivery_set(s);
    if (reference.empty()) {
      reference = blob;
      ref_deliveries = del;
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(blob, reference) << "threads=" << threads;
      EXPECT_EQ(del, ref_deliveries) << "threads=" << threads;
    }
  }
}

// --- the memory claim itself ----------------------------------------------

// Same workload, both representations: the compressed tree must be
// strictly smaller (chain records replace materialized piece-only zones
// and their key-index entries), implicit zones must actually exist, and
// content must agree.
TEST(ZoneCompress, CompressedTreeIsSmaller) {
  Stack on = make_stack({.seed = 33, .compress = true});
  Stack off = make_stack({.seed = 33, .compress = false});
  Rng rng(61);
  for (int i = 0; i < 300; ++i) {
    const net::HostIndex h = net::HostIndex(rng.index(32));
    const auto sub_on = on.gen->make_subscription();
    const auto sub_off = off.gen->make_subscription();
    on.sys->subscribe(h, on.scheme, sub_on);
    off.sys->subscribe(h, off.scheme, sub_off);
  }
  on.sim->run();
  off.sim->run();

  const auto mon = total_breakdown(on);
  const auto moff = total_breakdown(off);
  EXPECT_GT(mon.implicit_zones, 0u);
  EXPECT_EQ(moff.implicit_zones, 0u);
  // Every implicit zone is one materialized zone the uncompressed tree
  // pays full price for.
  EXPECT_EQ(mon.materialized_zones + mon.implicit_zones,
            moff.materialized_zones);
  EXPECT_LT(mon.zone_tree_bytes(), moff.zone_tree_bytes());
  EXPECT_EQ(on.sys->zone_content_digest(), off.sys->zone_content_digest());
}

}  // namespace
}  // namespace hypersub
