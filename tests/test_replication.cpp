// Replication extension tests: zone state survives surrogate-node failure
// when replicas > 0, on both substrates; no duplicate deliveries while the
// primary is alive; unsubscription reaches the replicas.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "net/topology.hpp"
#include "pastry/pastry_net.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub {
namespace {

struct Stack {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<chord::ChordNet> chord;
  std::unique_ptr<core::HyperSubSystem> sys;
};

Stack make_stack(std::size_t n, std::size_t replicas, std::uint64_t seed) {
  Stack s;
  net::KingLikeTopology::Params tp;
  tp.hosts = n;
  tp.seed = seed;
  s.topo = std::make_unique<net::KingLikeTopology>(tp);
  s.sim = std::make_unique<sim::Simulator>();
  s.net = std::make_unique<net::Network>(*s.sim, *s.topo);
  chord::ChordNet::Params cp;
  cp.seed = seed;
  s.chord = std::make_unique<chord::ChordNet>(*s.net, cp);
  core::HyperSubSystem::Config sc;
  sc.bootstrap = core::BootstrapMode::kOracle;
  sc.replicas = replicas;
  s.sys = std::make_unique<core::HyperSubSystem>(*s.chord, sc);
  return s;
}

TEST(Replication, NoDuplicatesWhilePrimaryAlive) {
  auto s = make_stack(40, 2, 3);
  workload::WorkloadGenerator gen(workload::table1_spec(), 5);
  core::SchemeOptions opt;
  opt.zone_cfg = {1, 20};
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);

  std::vector<std::pair<net::HostIndex, pubsub::Subscription>> subs;
  Rng rng(7);
  for (int i = 0; i < 150; ++i) {
    const auto h = net::HostIndex(rng.index(40));
    const auto sub = gen.make_subscription();
    s.sys->subscribe(h, scheme, sub);
    subs.emplace_back(h, sub);
  }
  s.sim->run();

  for (int i = 0; i < 60; ++i) {
    const auto e = gen.make_event();
    const std::size_t before = s.sys->deliveries().size();
    s.sys->publish(net::HostIndex(rng.index(40)), scheme, e);
    s.sim->run();
    std::multiset<std::size_t> got, expect;
    for (std::size_t d = before; d < s.sys->deliveries().size(); ++d) {
      got.insert(s.sys->deliveries()[d].subscriber);
    }
    for (const auto& [h, sub] : subs) {
      if (sub.matches(e.point)) expect.insert(h);
    }
    EXPECT_EQ(got, expect) << "event " << i;
  }
}

TEST(Replication, SubscriptionsSurviveSurrogateFailure) {
  // Without replication this exact scenario loses the subscription
  // (Failure.InstallToDeadOwnerIsLost shows the flip side).
  auto s = make_stack(40, 2, 9);
  workload::WorkloadGenerator gen(workload::tiny_spec(), 7);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);

  // A match-all subscription whose covering zone is the root.
  const pubsub::Subscription all(gen.scheme().domain());
  s.sys->subscribe(6, scheme, all);
  s.sim->run();

  // Find and kill the surrogate node of the root zone, then repair the
  // ring instantly (protocol repair is covered by the chord tests).
  const auto& ss = s.sys->scheme_runtime(scheme).subscheme(0);
  const auto key =
      lph::hash_subscription(ss.zones(), all.range(), ss.rotation()).key;
  const auto owner = s.chord->oracle_successor(key);
  ASSERT_NE(owner.host, 6u) << "test assumes subscriber != surrogate";
  s.chord->fail(owner.host);
  s.chord->oracle_build();

  s.sys->publish(11, scheme, gen.make_event());
  s.sim->run();
  s.sys->finalize_events();
  ASSERT_EQ(s.sys->deliveries().size(), 1u)
      << "replica failed to take over the dead surrogate's zone";
  EXPECT_EQ(s.sys->deliveries()[0].subscriber, 6u);
}

TEST(Replication, WholeChainSurvivesFailureUnderTableWorkload) {
  auto s = make_stack(50, 3, 11);
  workload::WorkloadGenerator gen(workload::table1_spec(), 13);
  core::SchemeOptions opt;
  opt.zone_cfg = {1, 20};
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);

  std::vector<std::pair<net::HostIndex, pubsub::Subscription>> subs;
  Rng rng(15);
  for (int i = 0; i < 200; ++i) {
    const auto h = net::HostIndex(rng.index(50));
    const auto sub = gen.make_subscription();
    s.sys->subscribe(h, scheme, sub);
    subs.emplace_back(h, sub);
  }
  s.sim->run();

  // Kill three surrogate-heavy nodes (not subscribers' own state — their
  // local repos matter only for unsubscribe) and repair.
  const auto loads = s.sys->node_loads();
  std::vector<net::HostIndex> by_load(50);
  for (net::HostIndex h = 0; h < 50; ++h) by_load[h] = h;
  std::sort(by_load.begin(), by_load.end(),
            [&](auto a, auto b) { return loads[a] > loads[b]; });
  std::set<net::HostIndex> dead;
  for (int k = 0; k < 3; ++k) {
    s.chord->fail(by_load[k]);
    dead.insert(by_load[k]);
  }
  s.chord->oracle_build();

  std::size_t expected = 0, got = 0;
  for (int i = 0; i < 40; ++i) {
    const auto e = gen.make_event();
    const std::size_t before = s.sys->deliveries().size();
    net::HostIndex pub;
    do {
      pub = net::HostIndex(rng.index(50));
    } while (dead.count(pub));
    s.sys->publish(pub, scheme, e);
    s.sim->run();
    for (const auto& [h, sub] : subs) {
      if (!dead.count(h) && sub.matches(e.point)) ++expected;
    }
    got += s.sys->deliveries().size() - before;
  }
  // With 3 replicas and 3 failures, live subscribers keep receiving
  // everything (replica sets of distinct nodes rarely all die together).
  EXPECT_EQ(got, expected);
}

TEST(Replication, UnsubscribeReachesReplicas) {
  auto s = make_stack(30, 2, 17);
  workload::WorkloadGenerator gen(workload::tiny_spec(), 19);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  const pubsub::Subscription all(gen.scheme().domain());
  const auto handle = s.sys->subscribe(4, scheme, all);
  s.sim->run();
  s.sys->unsubscribe(handle);
  s.sim->run();

  // Kill the surrogate AFTER the unsubscribe: the replica must not
  // resurrect the removed subscription.
  const auto& ss = s.sys->scheme_runtime(scheme).subscheme(0);
  const auto key =
      lph::hash_subscription(ss.zones(), all.range(), ss.rotation()).key;
  s.chord->fail(s.chord->oracle_successor(key).host);
  s.chord->oracle_build();

  s.sys->publish(9, scheme, gen.make_event());
  s.sim->run();
  s.sys->finalize_events();
  EXPECT_TRUE(s.sys->deliveries().empty());
}

TEST(Replication, PastrySubstrateToo) {
  net::KingLikeTopology::Params tp;
  tp.hosts = 40;
  tp.seed = 21;
  net::KingLikeTopology topo(tp);
  sim::Simulator sim;
  net::Network net(sim, topo);
  pastry::PastryNet pastry(net, {});
  pastry.oracle_build();
  core::HyperSubSystem::Config sc;
  sc.replicas = 2;
  core::HyperSubSystem sys(pastry, sc);

  workload::WorkloadGenerator gen(workload::tiny_spec(), 23);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = sys.add_scheme(gen.scheme(), opt);
  const pubsub::Subscription all(gen.scheme().domain());
  sys.subscribe(5, scheme, all);
  sim.run();

  const auto& ss = sys.scheme_runtime(scheme).subscheme(0);
  const auto key =
      lph::hash_subscription(ss.zones(), all.range(), ss.rotation()).key;
  const auto owner = pastry.oracle_owner(key);
  ASSERT_NE(owner.host, 5u);
  net.kill(owner.host);
  pastry.oracle_build();

  sys.publish(9, scheme, gen.make_event());
  sim.run();
  sys.finalize_events();
  ASSERT_EQ(sys.deliveries().size(), 1u);
  EXPECT_EQ(sys.deliveries()[0].subscriber, 5u);
}

}  // namespace
}  // namespace hypersub
