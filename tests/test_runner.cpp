// Experiment-runner tests: the turn-key harness drives a full simulation,
// returns sane metrics, and is deterministic per seed.

#include <gtest/gtest.h>

#include "runner/experiment.hpp"

namespace hypersub::runner {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.nodes = 60;
  cfg.subs_per_node = 3;
  cfg.events = 60;
  cfg.seed = 5;
  return cfg;
}

TEST(Runner, ProducesMetricsForEveryEvent) {
  const auto r = run_experiment(small_config());
  EXPECT_EQ(r.events.count(), 60u);
  EXPECT_EQ(r.nodes.count(), 60u);
  EXPECT_EQ(r.total_subs, 180u);
  EXPECT_GT(r.mean_rtt_ms, 0.0);
  // Some events should match something under the Table-1 workload.
  EXPECT_GT(r.avg_pct_matched, 0.0);
}

TEST(Runner, DeterministicPerSeed) {
  const auto a = run_experiment(small_config());
  const auto b = run_experiment(small_config());
  ASSERT_EQ(a.events.count(), b.events.count());
  for (std::size_t i = 0; i < a.events.count(); ++i) {
    EXPECT_EQ(a.events.records()[i].matched, b.events.records()[i].matched);
    EXPECT_EQ(a.events.records()[i].max_hops, b.events.records()[i].max_hops);
    EXPECT_DOUBLE_EQ(a.events.records()[i].max_latency_ms,
                     b.events.records()[i].max_latency_ms);
    EXPECT_EQ(a.events.records()[i].bandwidth_bytes,
              b.events.records()[i].bandwidth_bytes);
  }
}

TEST(Runner, SeedChangesResults) {
  auto cfg = small_config();
  const auto a = run_experiment(cfg);
  cfg.seed = 6;
  const auto b = run_experiment(cfg);
  // Identical totals would be a one-in-astronomical coincidence.
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(a.events.count(), b.events.count());
       ++i) {
    if (a.events.records()[i].bandwidth_bytes !=
        b.events.records()[i].bandwidth_bytes) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Runner, LoadBalancingMigratesAndKeepsCounts) {
  auto cfg = small_config();
  cfg.load_balancing = true;
  cfg.lb.delta = 0.05;
  cfg.lb.min_load = 2;
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.events.count(), 60u);
  EXPECT_GT(r.migrated, 0u);
}

TEST(Runner, ParallelMatchesSerial) {
  auto c1 = small_config();
  auto c2 = small_config();
  c2.base_bits = 2;
  const auto serial1 = run_experiment(c1);
  const auto serial2 = run_experiment(c2);
  const auto par = run_experiments_parallel({c1, c2});
  ASSERT_EQ(par.size(), 2u);
  EXPECT_EQ(par[0].events.records()[10].bandwidth_bytes,
            serial1.events.records()[10].bandwidth_bytes);
  EXPECT_EQ(par[1].events.records()[10].bandwidth_bytes,
            serial2.events.records()[10].bandwidth_bytes);
}

TEST(Runner, ConfigLabels) {
  ExperimentConfig cfg;
  EXPECT_EQ(config_label(cfg), "Base 2,level 20,no LB");
  cfg.base_bits = 2;
  cfg.load_balancing = true;
  EXPECT_EQ(config_label(cfg), "Base 4,level 10,LB");
}

}  // namespace
}  // namespace hypersub::runner
