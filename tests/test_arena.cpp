// SubArena + arena-backed ZoneState parity: the SoA storage must behave
// exactly like the plain vector<StoredSub> layout it replaced. A
// reference model (the old layout, reimplemented here) shadows a
// ZoneState through randomized add/remove/extract/piece/bucket sequences;
// match results and summary filters must stay identical at every step.
// Also covers set_index_threshold re-tune transitions (build-on-lower /
// drop-on-raise) and SubArena slot/pool recycling.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/sub_arena.hpp"
#include "core/zone_state.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub {
namespace {

using core::MigratedBucket;
using core::StoredSub;
using core::SubArena;
using core::SubId;
using core::SubIdKind;
using core::ZoneAddr;
using core::ZoneState;

constexpr std::size_t kNever = ~std::size_t{0};

StoredSub make_stored(std::size_t i, const pubsub::Subscription& sub) {
  const Id owner = Id(i) * 0x9E3779B97F4A7C15ull + 13;
  return StoredSub{SubId{owner, std::uint32_t(i), SubIdKind::kSubscriber},
                   sub, sub.range()};
}

// -- SubArena unit properties -------------------------------------------------

TEST(SubArena, StoresAndMaterializesRoundTrip) {
  workload::WorkloadGenerator gen(workload::table1_spec(), 5);
  SubArena arena;
  std::vector<StoredSub> ref;
  std::vector<SubArena::Ref> refs;
  for (std::size_t i = 0; i < 100; ++i) {
    ref.push_back(make_stored(i, gen.make_subscription()));
    refs.push_back(arena.add(ref.back()));
  }
  ASSERT_EQ(arena.size(), 100u);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(arena.owner(refs[i]), ref[i].owner);
    const StoredSub m = arena.materialize(refs[i]);
    EXPECT_EQ(m.sub.range(), ref[i].sub.range());
    EXPECT_EQ(m.projected, ref[i].projected);
  }
  // Exact containment agrees with the heap-backed subscription.
  for (int e = 0; e < 50; ++e) {
    const Point p = gen.make_event().point;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(arena.full_contains(refs[i], p), ref[i].sub.matches(p));
    }
  }
}

TEST(SubArena, RecyclesSlotsAndPoolSpaceWhenDimensionsMatch) {
  workload::WorkloadGenerator gen(workload::table1_spec(), 6);
  SubArena arena;
  const auto a = arena.add(make_stored(0, gen.make_subscription()));
  const auto b = arena.add(make_stored(1, gen.make_subscription()));
  arena.remove(b);
  arena.remove(a);
  EXPECT_TRUE(arena.empty());
  // Same dimensionality: the freed slots (LIFO) are reused in place.
  const auto c = arena.add(make_stored(2, gen.make_subscription()));
  const auto d = arena.add(make_stored(3, gen.make_subscription()));
  EXPECT_EQ(c, a);
  EXPECT_EQ(d, b);
  EXPECT_EQ(arena.size(), 2u);
  EXPECT_EQ(arena.owner(c).iid, 2u);
  EXPECT_EQ(arena.owner(d).iid, 3u);
}

// -- reference model of the old vector<StoredSub> layout ----------------------

struct RefModel {
  std::vector<StoredSub> subs;
  std::optional<std::pair<HyperRect, Id>> piece;
  std::vector<MigratedBucket> buckets;

  void match(const Point& full, const Point& projected,
             std::vector<SubId>& out) const {
    for (const auto& s : subs) {
      if (s.sub.matches(full)) out.push_back(s.owner);
    }
    if (piece && piece->first.contains(projected)) {
      out.push_back(SubId{piece->second, 0, SubIdKind::kZone});
    }
    for (const auto& b : buckets) {
      if (b.summary.contains(projected)) out.push_back(b.pointer);
    }
  }

  HyperRect summary() const {
    HyperRect s;
    for (const auto& sub : subs) s = s.hull(sub.projected);
    if (piece) s = s.hull(piece->first);
    for (const auto& b : buckets) s = s.hull(b.summary);
    return s;
  }
};

void expect_same_matches(const ZoneState& z, const RefModel& ref,
                         workload::WorkloadGenerator& gen, int events) {
  for (int e = 0; e < events; ++e) {
    const Point p = gen.make_event().point;
    std::vector<SubId> got, want;
    z.match(p, p, got);
    ref.match(p, p, want);
    ASSERT_EQ(got, want) << "event " << e;
  }
  EXPECT_EQ(z.summary(), ref.summary());
}

// Randomized mutation parity across every mutation path, with and without
// the index (both thresholds exercise the same arena storage).
class ArenaParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArenaParity, RandomizedMutationsMatchOldLayout) {
  const std::size_t threshold = GetParam();
  workload::WorkloadGenerator gen(workload::table1_spec(), 31);
  Rng rng(91);
  ZoneState z(ZoneAddr{0, 0, {0, 0}}, threshold);
  RefModel ref;

  std::size_t next = 0;
  for (int round = 0; round < 6; ++round) {
    // Adds.
    for (int i = 0; i < 120; ++i) {
      const StoredSub s = make_stored(next++, gen.make_subscription());
      ref.subs.push_back(s);
      z.add_subscription(s);
    }
    // Random removals (by owner, matching the old linear-scan semantics).
    for (int i = 0; i < 30 && !ref.subs.empty(); ++i) {
      const std::size_t at = rng.index(ref.subs.size());
      const SubId victim = ref.subs[at].owner;
      const auto got = z.remove_subscription(victim);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->owner, victim);
      ref.subs.erase(ref.subs.begin() + std::ptrdiff_t(at));
    }
    // Arc extraction (migration path): same victims, same order.
    if (round % 2 == 1) {
      const Id lo = rng.next_u64();
      const Id hi = lo + (~Id{0}) / 5;
      const auto out = z.extract_subscribers_in_arc(lo, hi);
      std::vector<StoredSub> expect;
      std::vector<StoredSub> kept;
      for (const auto& s : ref.subs) {
        const Id t = s.owner.target;
        const bool in_arc = lo <= hi ? (t >= lo && t < hi)
                                     : (t >= lo || t < hi);
        (in_arc ? expect : kept).push_back(s);
      }
      ref.subs = std::move(kept);
      ASSERT_EQ(out.size(), expect.size());
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].owner, expect[i].owner);
        EXPECT_EQ(out[i].sub.range(), expect[i].sub.range());
      }
      // The contract leaves the summary unshrunk after extraction; bring
      // both sides to the exact cover before comparing further.
      z.recompute_summary();
    }
    // Parent piece install/replace.
    const HyperRect piece = gen.make_subscription().range();
    ref.piece = {piece, Id(round)};
    z.set_parent_piece(piece, Id(round));
    // A migrated bucket every other round.
    if (round % 2 == 0) {
      const MigratedBucket b{gen.make_subscription().range(),
                             {},
                             SubId{Id(round), std::uint32_t(round),
                                   SubIdKind::kMigrated}};
      ref.buckets.push_back(b);
      z.add_migrated_bucket(b);
    }
    expect_same_matches(z, ref, gen, 60);
  }
  EXPECT_EQ(z.subscription_count(), ref.subs.size());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ArenaParity,
                         ::testing::Values(kNever, std::size_t{64},
                                           std::size_t{1}));

// -- set_index_threshold re-tune transitions ----------------------------------

TEST(IndexThreshold, LoweringBelowCountBuildsRaisingAboveDrops) {
  workload::WorkloadGenerator gen(workload::table1_spec(), 41);
  ZoneState z(ZoneAddr{0, 0, {0, 0}});  // default threshold 64
  RefModel ref;
  for (std::size_t i = 0; i < 40; ++i) {
    const StoredSub s = make_stored(i, gen.make_subscription());
    ref.subs.push_back(s);
    z.add_subscription(s);
  }
  EXPECT_FALSE(z.index_active());

  // Lower the threshold below the live count: the index builds eagerly.
  z.set_index_threshold(10);
  EXPECT_TRUE(z.index_active());
  expect_same_matches(z, ref, gen, 40);

  // Raise it back above the count: the index drops, scan takes over.
  z.set_index_threshold(kNever);
  EXPECT_FALSE(z.index_active());
  expect_same_matches(z, ref, gen, 40);

  // Re-lower and mutate through the indexed path again.
  z.set_index_threshold(1);
  EXPECT_TRUE(z.index_active());
  for (std::size_t i = 40; i < 60; ++i) {
    const StoredSub s = make_stored(i, gen.make_subscription());
    ref.subs.push_back(s);
    z.add_subscription(s);
  }
  expect_same_matches(z, ref, gen, 40);

  // Equal-to-count boundary: threshold == count keeps the index (>=).
  z.set_index_threshold(ref.subs.size());
  EXPECT_TRUE(z.index_active());
  z.set_index_threshold(ref.subs.size() + 1);
  EXPECT_FALSE(z.index_active());
  expect_same_matches(z, ref, gen, 40);
}

}  // namespace
}  // namespace hypersub
