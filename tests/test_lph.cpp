// Locality-preserving hashing tests: zone tree geometry, code/key mapping,
// Algorithm 1 (smallest covering zone / leaf zone), rotation.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "lph/lph.hpp"
#include "lph/zone.hpp"

namespace hypersub::lph {
namespace {

HyperRect unit2() { return HyperRect::uniform(2, 0.0, 1.0); }

// ---------------------------------------------------------------------------
// zone tree navigation
// ---------------------------------------------------------------------------

TEST(ZoneSystem, RootAndLevels) {
  const ZoneSystem zs(unit2(), {1, 20});
  EXPECT_EQ(zs.base(), 2);
  EXPECT_EQ(zs.max_level(), 20);
  EXPECT_EQ(zs.root(), (Zone{0, 0}));
  EXPECT_FALSE(zs.is_leaf(zs.root()));
}

TEST(ZoneSystem, ChildParentRoundTrip) {
  const ZoneSystem zs(unit2(), {2, 20});  // base 4, 10 levels
  EXPECT_EQ(zs.base(), 4);
  EXPECT_EQ(zs.max_level(), 10);
  Zone z = zs.root();
  z = zs.child(z, 3);
  z = zs.child(z, 1);
  z = zs.child(z, 2);
  EXPECT_EQ(z.level, 3);
  EXPECT_EQ(zs.digit(z, 1), 3);
  EXPECT_EQ(zs.digit(z, 2), 1);
  EXPECT_EQ(zs.digit(z, 3), 2);
  EXPECT_EQ(zs.parent(zs.parent(zs.parent(z))), zs.root());
}

TEST(ZoneSystem, ExtentMatchesPaperFigure1) {
  // Figure 1 of the paper: base 2, 2 dimensions. The first division splits
  // dimension 0; code "0" is the left half, "1" the right half. The second
  // division splits dimension 1.
  const ZoneSystem zs(unit2(), {1, 20});
  EXPECT_EQ(zs.extent(Zone{0, 1}), HyperRect({{0, 0.5}, {0, 1}}));
  EXPECT_EQ(zs.extent(Zone{1, 1}), HyperRect({{0.5, 1}, {0, 1}}));
  // code "01": left half, then upper half of dim 1.
  EXPECT_EQ(zs.extent(Zone{0b01, 2}), HyperRect({{0, 0.5}, {0.5, 1}}));
  // code "110": right, upper, then dim 0 again -> left quarter of the right.
  EXPECT_EQ(zs.extent(Zone{0b110, 3}),
            HyperRect({{0.5, 0.75}, {0.5, 1}}));
}

TEST(ZoneSystem, ChildrenTileParent) {
  Rng rng(5);
  for (const int bb : {1, 2}) {
    const ZoneSystem zs(unit2(), {bb, 20});
    Zone z = zs.root();
    for (int step = 0; step < 5; ++step) {
      const HyperRect pe = zs.extent(z);
      double vol = 0.0;
      for (int c = 0; c < zs.base(); ++c) {
        const HyperRect ce = zs.extent(zs.child(z, c));
        EXPECT_TRUE(pe.covers(ce));
        vol += ce.volume_fraction(pe);
      }
      EXPECT_NEAR(vol, 1.0, 1e-12);
      z = zs.child(z, int(rng.index(std::size_t(zs.base()))));
    }
  }
}

// ---------------------------------------------------------------------------
// key mapping
// ---------------------------------------------------------------------------

TEST(ZoneSystem, KeyPadsWithOnes) {
  const ZoneSystem zs(unit2(), {1, 20});
  // Root: all one-bits.
  EXPECT_EQ(zs.key(zs.root()), ~Id{0});
  // Level-1 zone "0": 0 followed by 63 ones.
  EXPECT_EQ(zs.key(Zone{0, 1}), ~Id{0} >> 1);
  // Level-1 zone "1": all ones again in the top bit plus padding.
  EXPECT_EQ(zs.key(Zone{1, 1}), ~Id{0});
  // Level-2 zone "10".
  EXPECT_EQ(zs.key(Zone{0b10, 2}), (Id{0b10} << 62) | (~Id{0} >> 2));
}

TEST(ZoneSystem, ParentKeyIsKeyOfLastChild) {
  // key(cz) equals key of its (β-1)-th child all the way down — the
  // locality property that keeps zone chains on nearby nodes.
  for (const int bb : {1, 2, 4}) {
    const ZoneSystem zs(HyperRect::uniform(3, 0, 1), {bb, 20});
    Zone z{3 % ((1u << bb)), 1};
    for (int l = 1; l < zs.max_level(); ++l) {
      const Zone last = zs.child(z, zs.base() - 1);
      EXPECT_EQ(zs.key(z), zs.key(last));
      z = zs.child(z, 0);
    }
  }
}

TEST(ZoneSystem, KeysDistinctAcrossSiblings) {
  const ZoneSystem zs(unit2(), {1, 20});
  const Zone a{0b0, 1}, b{0b1, 1};
  EXPECT_NE(zs.key(a), zs.key(b));
}

// ---------------------------------------------------------------------------
// Algorithm 1: locate
// ---------------------------------------------------------------------------

TEST(Locate, PointGoesToLeafContainingIt) {
  for (const int bb : {1, 2}) {
    const ZoneSystem zs(unit2(), {bb, 20});
    Rng rng(31);
    for (int i = 0; i < 500; ++i) {
      const Point p{rng.uniform(0, 1), rng.uniform(0, 1)};
      const Zone z = zs.locate(p);
      EXPECT_EQ(z.level, zs.max_level());
      EXPECT_TRUE(zs.extent(z).contains(p));
    }
  }
}

TEST(Locate, DomainTopBelongsToLastZone) {
  const ZoneSystem zs(unit2(), {1, 20});
  const Zone z = zs.locate(Point{1.0, 1.0});
  EXPECT_EQ(z.level, zs.max_level());
  EXPECT_TRUE(zs.extent(z).contains(Point{1.0, 1.0}));
}

TEST(Locate, RectSmallestCoveringZone) {
  const ZoneSystem zs(unit2(), {1, 20});
  Rng rng(32);
  for (int i = 0; i < 500; ++i) {
    const double w = rng.uniform(0.001, 0.3);
    const double h = rng.uniform(0.001, 0.3);
    const double x = rng.uniform(0, 1 - w);
    const double y = rng.uniform(0, 1 - h);
    const HyperRect r({{x, x + w}, {y, y + h}});
    const Zone z = zs.locate(r);
    // Covering:
    EXPECT_TRUE(zs.extent(z).covers(r));
    // Minimal: no child of z also covers r.
    if (!zs.is_leaf(z)) {
      for (int c = 0; c < zs.base(); ++c) {
        EXPECT_FALSE(zs.extent(zs.child(z, c)).covers(r));
      }
    }
  }
}

TEST(Locate, RectStraddlingFirstSplitMapsToRoot) {
  const ZoneSystem zs(unit2(), {1, 20});
  const HyperRect r({{0.49, 0.51}, {0.1, 0.2}});
  EXPECT_EQ(zs.locate(r), zs.root());
}

TEST(Locate, FullDomainMapsToRoot) {
  const ZoneSystem zs(unit2(), {1, 20});
  EXPECT_EQ(zs.locate(unit2()), zs.root());
}

TEST(Locate, PointZoneIsDescendantOfCoveringRectZone) {
  // Locality: if a point lies inside a rect, the point's leaf zone is a
  // descendant of the rect's covering zone (prefix relationship on codes).
  const ZoneSystem zs(unit2(), {1, 20});
  Rng rng(33);
  for (int i = 0; i < 300; ++i) {
    const double w = rng.uniform(0.001, 0.2);
    const double h = rng.uniform(0.001, 0.2);
    const double x = rng.uniform(0, 1 - w);
    const double y = rng.uniform(0, 1 - h);
    const HyperRect r({{x, x + w}, {y, y + h}});
    const Point p{x + w / 2, y + h / 2};
    const Zone rz = zs.locate(r);
    const Zone pz = zs.locate(p);
    ASSERT_GE(pz.level, rz.level);
    // rz's code is a prefix of pz's code.
    EXPECT_EQ(pz.code >> ((pz.level - rz.level) * zs.base_bits()), rz.code);
  }
}

// ---------------------------------------------------------------------------
// LPH + rotation
// ---------------------------------------------------------------------------

TEST(Lph, HashSubscriptionAndEventAgree) {
  const ZoneSystem zs(unit2(), {1, 20});
  const HyperRect r({{0.1, 0.12}, {0.3, 0.33}});
  const auto rs = hash_subscription(zs, r, 0);
  EXPECT_EQ(rs.key, zs.key(rs.zone));
  const auto es = hash_event(zs, Point{0.11, 0.31}, 0);
  EXPECT_EQ(es.zone.level, zs.max_level());
}

TEST(Lph, RotationShiftsKeysUniformly) {
  const ZoneSystem zs(unit2(), {1, 20});
  const Id rot = rotation_offset("schemeA");
  EXPECT_NE(rot, 0u);
  const HyperRect r({{0.1, 0.12}, {0.3, 0.33}});
  const auto plain = hash_subscription(zs, r, 0);
  const auto rotated = hash_subscription(zs, r, rot);
  EXPECT_EQ(rotated.zone, plain.zone);
  EXPECT_EQ(rotated.key, plain.key + rot);
}

TEST(Lph, DifferentSchemesGetDifferentOffsets) {
  EXPECT_NE(rotation_offset("a"), rotation_offset("b"));
  EXPECT_EQ(rotation_offset("a"), rotation_offset("a"));
}

TEST(Lph, NearbyPointsShareKeyPrefixes) {
  // The locality property: two points in the same leaf zone hash to the
  // same key; points in sibling zones differ only in low digits.
  const ZoneSystem zs(unit2(), {1, 20});
  const auto a = hash_event(zs, Point{0.2000001, 0.7000001}, 0);
  const auto b = hash_event(zs, Point{0.2000002, 0.7000002}, 0);
  EXPECT_EQ(a.key, b.key);
  const auto far = hash_event(zs, Point{0.9, 0.1}, 0);
  EXPECT_NE(a.key, far.key);
}

class LphBaseTest : public ::testing::TestWithParam<int> {};

TEST_P(LphBaseTest, EventZoneDescendsFromSubscriptionZone) {
  const int bb = GetParam();
  const ZoneSystem zs(HyperRect::uniform(4, 0, 100), {bb, 20});
  Rng rng(44);
  for (int i = 0; i < 200; ++i) {
    std::vector<Interval> dims;
    Point p;
    for (int d = 0; d < 4; ++d) {
      const double w = rng.uniform(0.1, 10.0);
      const double lo = rng.uniform(0.0, 100.0 - w);
      dims.push_back({lo, lo + w});
      p.push_back(rng.uniform(lo, lo + w));
    }
    const HyperRect r(std::move(dims));
    const Zone rz = zs.locate(r);
    const Zone pz = zs.locate(p);
    EXPECT_EQ(pz.code >> ((pz.level - rz.level) * zs.base_bits()), rz.code);
  }
}

INSTANTIATE_TEST_SUITE_P(Bases, LphBaseTest, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace hypersub::lph
