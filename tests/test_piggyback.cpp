// Tests for the §6 extension: piggybacking DHT liveness maintenance onto
// event-delivery traffic.

#include <gtest/gtest.h>

#include <memory>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "net/topology.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub {
namespace {

struct Stack {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<chord::ChordNet> chord;
};

Stack make_stack(std::size_t n, bool probe, bool piggyback,
                 std::uint64_t seed = 1) {
  Stack s;
  net::KingLikeTopology::Params tp;
  tp.hosts = n;
  tp.seed = seed;
  s.topo = std::make_unique<net::KingLikeTopology>(tp);
  s.sim = std::make_unique<sim::Simulator>();
  s.net = std::make_unique<net::Network>(*s.sim, *s.topo);
  chord::ChordNet::Params cp;
  cp.seed = seed;
  cp.probe_fingers = probe;
  cp.piggyback_maintenance = piggyback;
  s.chord = std::make_unique<chord::ChordNet>(*s.net, cp);
  s.chord->oracle_build();
  return s;
}

TEST(Piggyback, FingerProbesSendPings) {
  auto s = make_stack(32, /*probe=*/true, /*piggyback=*/false);
  s.chord->start_maintenance();
  s.sim->run_until(5000.0);
  s.chord->stop_maintenance();
  s.sim->run();
  EXPECT_GT(s.chord->pings_sent(), 0u);
  EXPECT_EQ(s.chord->pings_saved(), 0u);  // piggyback off: nothing saved
}

TEST(Piggyback, NoteContactSuppressesPings) {
  auto s = make_stack(32, /*probe=*/true, /*piggyback=*/true);
  // Feed fresh contact for every neighbor of every node continuously.
  for (int round = 0; round < 10; ++round) {
    for (net::HostIndex h = 0; h < 32; ++h) {
      for (const auto& nb : s.chord->node(h).neighbors()) {
        s.chord->note_contact(h, nb.id);
      }
    }
    s.chord->start_maintenance();
    s.sim->run_until(s.sim->now() + 400.0);
    s.chord->stop_maintenance();
    s.sim->run();
  }
  EXPECT_GT(s.chord->pings_saved(), 0u);
}

TEST(Piggyback, NoteContactIsNoOpWhenDisabled) {
  auto s = make_stack(16, true, /*piggyback=*/false);
  s.chord->note_contact(0, s.chord->node(1).id());
  s.chord->start_maintenance();
  s.sim->run_until(2000.0);
  s.chord->stop_maintenance();
  s.sim->run();
  EXPECT_EQ(s.chord->pings_saved(), 0u);
}

TEST(Piggyback, EventTrafficReducesMaintenancePings) {
  // End to end: the same network + maintenance, once idle and once under
  // event load with piggybacking. Under load, fewer explicit pings.
  std::uint64_t sent_idle = 0, sent_busy = 0, saved_busy = 0;
  for (const bool busy : {false, true}) {
    auto s = make_stack(60, /*probe=*/true, /*piggyback=*/true, 5);
    core::HyperSubSystem sys(*s.chord);
    workload::WorkloadGenerator gen(workload::tiny_spec(), 3);
    core::SchemeOptions opt;
    opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
    const auto scheme = sys.add_scheme(gen.scheme(), opt);
    for (net::HostIndex h = 0; h < 60; ++h) {
      sys.subscribe(h, scheme,
                    pubsub::Subscription(gen.scheme().domain()));
    }
    s.sim->run();
    s.chord->start_maintenance();
    if (busy) {
      Rng rng(7);
      double t = 0;
      for (int i = 0; i < 400; ++i) {
        t += rng.exponential(25.0);  // heavy feed: ~40 events/second
        pubsub::Event e = gen.make_event();
        const auto pub = net::HostIndex(rng.index(60));
        s.sim->schedule(t, [&sys, scheme, pub, e]() mutable {
          sys.publish(pub, scheme, std::move(e));
        });
      }
    }
    s.sim->run_until(s.sim->now() + 10000.0);
    s.chord->stop_maintenance();
    s.sim->run();
    sys.finalize_events();
    if (busy) {
      sent_busy = s.chord->pings_sent();
      saved_busy = s.chord->pings_saved();
    } else {
      sent_idle = s.chord->pings_sent();
    }
  }
  EXPECT_GT(saved_busy, 0u);
  EXPECT_LT(sent_busy, sent_idle);
}

TEST(Piggyback, DeadFingerStillDetectedWithoutRecentContact) {
  auto s = make_stack(24, /*probe=*/true, /*piggyback=*/true, 9);
  s.chord->start_maintenance();
  s.sim->run_until(2000.0);
  // Kill a node; with no traffic, probes must eventually clear it from
  // routing tables of nodes that had it as a finger.
  const net::HostIndex victim = 7;
  const Id victim_id = s.chord->id_of(victim);
  s.chord->fail(victim);
  s.sim->run_until(s.sim->now() + 120000.0);
  s.chord->stop_maintenance();
  s.sim->run();
  for (net::HostIndex h = 0; h < 24; ++h) {
    if (h == victim || !s.net->alive(h)) continue;
    const auto& nd = s.chord->node(h);
    EXPECT_NE(nd.successor().id, victim_id) << "host " << h;
    EXPECT_TRUE(!nd.predecessor().valid() ||
                nd.predecessor().id != victim_id);
  }
}

}  // namespace
}  // namespace hypersub
