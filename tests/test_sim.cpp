// Unit tests for the discrete-event simulation engine.

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace hypersub::sim {
namespace {

TEST(Simulator, RunsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(10.0, [&] { order.push_back(2); });
  s.schedule(5.0, [&] { order.push_back(1); });
  s.schedule(20.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 20.0);
}

TEST(Simulator, FifoTiebreakAtEqualTimes) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator s;
  std::vector<double> times;
  s.schedule(1.0, [&] {
    times.push_back(s.now());
    s.schedule(2.0, [&] { times.push_back(s.now()); });
  });
  s.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator s;
  double fired = -1.0;
  s.schedule(5.0, [&] {
    s.schedule(-3.0, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired, 5.0);
}

TEST(Simulator, RunUntilLeavesLaterEvents) {
  Simulator s;
  int ran = 0;
  s.schedule(1.0, [&] { ++ran; });
  s.schedule(2.0, [&] { ++ran; });
  s.schedule(3.0, [&] { ++ran; });
  const auto n = s.run_until(2.0);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  s.run();
  EXPECT_EQ(ran, 3);
}

TEST(Simulator, RunUntilAdvancesTimeWhenIdle) {
  Simulator s;
  s.run_until(42.0);
  EXPECT_DOUBLE_EQ(s.now(), 42.0);
}

TEST(Simulator, MaxEventsBound) {
  Simulator s;
  int ran = 0;
  for (int i = 0; i < 5; ++i) s.schedule(double(i), [&] { ++ran; });
  EXPECT_EQ(s.run(3), 3u);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(s.pending(), 2u);
}

TEST(Simulator, ExecutedCounter) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule(1.0, [] {});
  s.run();
  EXPECT_EQ(s.executed(), 7u);
}

TEST(Simulator, ScheduleAtAbsolute) {
  Simulator s;
  double t = 0.0;
  s.schedule_at(9.5, [&] { t = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(t, 9.5);
}

// Stress: a self-rescheduling chain stays deterministic and ordered.
TEST(Simulator, LongChainDeterministic) {
  Simulator s;
  int count = 0;
  std::function<void()> step = [&] {
    if (++count < 10000) s.schedule(0.1, step);
  };
  s.schedule(0.1, step);
  s.run();
  EXPECT_EQ(count, 10000);
  EXPECT_NEAR(s.now(), 1000.0, 1e-6);
}

}  // namespace
}  // namespace hypersub::sim
