// Unit tests for the discrete-event simulation engine.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace hypersub::sim {
namespace {

TEST(Simulator, RunsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(10.0, [&] { order.push_back(2); });
  s.schedule(5.0, [&] { order.push_back(1); });
  s.schedule(20.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 20.0);
}

TEST(Simulator, FifoTiebreakAtEqualTimes) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator s;
  std::vector<double> times;
  s.schedule(1.0, [&] {
    times.push_back(s.now());
    s.schedule(2.0, [&] { times.push_back(s.now()); });
  });
  s.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator s;
  double fired = -1.0;
  s.schedule(5.0, [&] {
    s.schedule(-3.0, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired, 5.0);
}

TEST(Simulator, RunUntilLeavesLaterEvents) {
  Simulator s;
  int ran = 0;
  s.schedule(1.0, [&] { ++ran; });
  s.schedule(2.0, [&] { ++ran; });
  s.schedule(3.0, [&] { ++ran; });
  const auto n = s.run_until(2.0);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  s.run();
  EXPECT_EQ(ran, 3);
}

TEST(Simulator, RunUntilAdvancesTimeWhenIdle) {
  Simulator s;
  s.run_until(42.0);
  EXPECT_DOUBLE_EQ(s.now(), 42.0);
}

TEST(Simulator, MaxEventsBound) {
  Simulator s;
  int ran = 0;
  for (int i = 0; i < 5; ++i) s.schedule(double(i), [&] { ++ran; });
  EXPECT_EQ(s.run(3), 3u);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(s.pending(), 2u);
}

TEST(Simulator, ExecutedCounter) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule(1.0, [] {});
  s.run();
  EXPECT_EQ(s.executed(), 7u);
}

TEST(Simulator, ScheduleAtAbsolute) {
  Simulator s;
  double t = 0.0;
  s.schedule_at(9.5, [&] { t = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(t, 9.5);
}

// Stress: a self-rescheduling chain stays deterministic and ordered.
TEST(Simulator, LongChainDeterministic) {
  Simulator s;
  int count = 0;
  std::function<void()> step = [&] {
    if (++count < 10000) s.schedule(0.1, step);
  };
  s.schedule(0.1, step);
  s.run();
  EXPECT_EQ(count, 10000);
  EXPECT_NEAR(s.now(), 1000.0, 1e-6);
}

// --- edge cases ---------------------------------------------------------

TEST(Simulator, RunUntilIncludesEqualTimeTies) {
  // run_until's boundary is inclusive, and equal-time events at the
  // boundary keep their FIFO order — including one scheduled *at* the
  // boundary by a boundary event itself.
  Simulator s;
  std::vector<int> order;
  s.schedule_at(2.0, [&] {
    order.push_back(1);
    s.schedule(0.0, [&] { order.push_back(3); });
  });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.schedule_at(2.0000001, [&] { order.push_back(4); });
  const auto n = s.run_until(2.0);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
}

TEST(Simulator, MaxEventsPauseAndResume) {
  // Pausing on the event budget must not lose queued events, reorder the
  // remainder, or disturb the clock; resuming picks up exactly where the
  // budget ran out.
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    s.schedule(double(i), [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(s.run(2), 2u);
  EXPECT_DOUBLE_EQ(s.now(), 1.0);
  EXPECT_EQ(s.pending(), 4u);
  EXPECT_EQ(s.run(3), 3u);
  EXPECT_DOUBLE_EQ(s.now(), 4.0);
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(s.executed(), 6u);
}

TEST(Simulator, FifoTiebreakAcrossScheduleAndScheduleAt) {
  // schedule(delay) and schedule_at(when) landing on the same timestamp
  // share one submission order — the tie-break is global, not per-API.
  Simulator s;
  std::vector<int> order;
  s.schedule(3.0, [&] { order.push_back(0); });
  s.schedule_at(3.0, [&] { order.push_back(1); });
  s.schedule(3.0, [&] { order.push_back(2); });
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Simulator, NegativeDelayKeepsFifoWithExistingEvents) {
  // A clamped negative delay behaves exactly like delay 0: it queues
  // behind events already pending at the current time.
  Simulator s;
  std::vector<int> order;
  s.schedule(5.0, [&] {
    order.push_back(1);
    s.schedule(-2.0, [&] { order.push_back(3); });
  });
  s.schedule(5.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// --- parallel engine ----------------------------------------------------

TEST(SimulatorParallel, ShardedRunMatchesSequentialOrder) {
  // The same cross-shard workload executed sequentially and with a worker
  // pool must produce the same observable mutation order. Observations go
  // through defer_ordered, the engine's mechanism for totally-ordered side
  // effects.
  const auto run_one = [](unsigned threads) {
    Simulator s;
    s.set_threads(threads);
    s.set_lookahead(2.0);
    std::vector<std::pair<Shard, double>> log;
    for (Shard sh = 0; sh < 8; ++sh) {
      s.schedule_on(sh, double(sh % 3), [&s, &log, sh] {
        EXPECT_EQ(s.current_shard(), sh);
        s.defer_ordered([&s, &log, sh] { log.emplace_back(sh, s.now()); });
        // Ping a neighbor shard; cross-shard sends respect the lookahead.
        s.schedule_on((sh + 1) % 8, s.lookahead(), [&s, &log] {
          s.defer_ordered(
              [&s, &log] { log.emplace_back(s.current_shard(), s.now()); });
        });
      });
    }
    s.run();
    return log;
  };
  const auto seq = run_one(1);
  EXPECT_EQ(seq.size(), 16u);
  EXPECT_EQ(run_one(4), seq);
}

TEST(SimulatorParallel, ContextInheritanceAndWorkerSlots) {
  Simulator s;
  s.set_threads(4);
  s.set_lookahead(1.0);
  bool checked_shard = false, checked_main = false;
  s.schedule_on(3, 0.0, [&] {
    EXPECT_TRUE(s.in_worker_context());
    EXPECT_EQ(s.current_shard(), Shard{3});
    EXPECT_GE(s.worker_slot(), 1u);
    // A plain schedule() from a shard context inherits the shard.
    s.schedule(0.5, [&] {
      EXPECT_EQ(s.current_shard(), Shard{3});
      checked_shard = true;
    });
  });
  // Exclusive events (main-context schedules) run alone between windows.
  s.schedule(0.25, [&] {
    EXPECT_FALSE(s.in_worker_context());
    EXPECT_EQ(s.current_shard(), kNoShard);
    EXPECT_EQ(s.worker_slot(), 0u);
    checked_main = true;
  });
  s.run();
  EXPECT_TRUE(checked_shard);
  EXPECT_TRUE(checked_main);
}

TEST(SimulatorParallel, ExclusivePinnedEventSeesAllPriorMutations) {
  // schedule_on(kNoShard, ...) pins an event exclusive: every shard event
  // before it has executed and merged when it runs (maintenance-tick
  // pattern).
  Simulator s;
  s.set_threads(4);
  s.set_lookahead(1.0);
  int done = 0;
  for (Shard sh = 0; sh < 16; ++sh) {
    s.schedule_on(sh, 1.0, [&s, &done] {
      s.defer_ordered([&done] { ++done; });
    });
  }
  bool saw_all = false;
  s.schedule_on(kNoShard, 5.0, [&] {
    EXPECT_FALSE(s.in_worker_context());
    saw_all = done == 16;
  });
  s.run();
  EXPECT_TRUE(saw_all);
}

TEST(SimulatorParallel, RunUntilStopsAtBoundary) {
  Simulator s;
  s.set_threads(2);
  s.set_lookahead(1.0);
  int ran = 0;
  s.schedule_on(0, 1.0, [&s, &ran] { s.defer_ordered([&ran] { ++ran; }); });
  s.schedule_on(1, 3.0, [&s, &ran] { s.defer_ordered([&ran] { ++ran; }); });
  EXPECT_EQ(s.run_until(2.0), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorParallel, DeferOrderedRunsInlineSequentially) {
  Simulator s;  // threads=1: defer_ordered must apply immediately
  int x = 0;
  s.schedule(1.0, [&] {
    s.defer_ordered([&] { x = 1; });
    EXPECT_EQ(x, 1);
  });
  s.run();
  EXPECT_EQ(x, 1);
}

// --- Task (SBO callable) ------------------------------------------------

TEST(Task, SmallCapturesStayInline) {
  struct Small {
    void* a;
    std::uint64_t b[4];
    void operator()() {}
  };
  static_assert(sizeof(Small) <= Task::kInlineSize);
  EXPECT_TRUE(Task::fits_inline<Small>());
}

TEST(Task, LargeCapturesSpillToHeapAndStillRun) {
  std::uint64_t big[16] = {};
  big[15] = 7;
  int out = 0;
  auto fn = [big, &out] { out = int(big[15]); };
  EXPECT_FALSE(Task::fits_inline<decltype(fn)>());
  Task t(fn);
  std::move(t)();
  EXPECT_EQ(out, 7);
}

TEST(Task, MoveTransfersOwnershipExactlyOnce) {
  // A move-only capture proves the stored callable is relocated, not
  // copied, and destroyed exactly once.
  auto p = std::make_unique<int>(41);
  int out = 0;
  Task a([p = std::move(p), &out] { out = ++*p; });
  EXPECT_TRUE(bool(a));
  Task b(std::move(a));
  EXPECT_FALSE(bool(a));
  Task c;
  c = std::move(b);
  EXPECT_FALSE(bool(b));
  c();
  EXPECT_EQ(out, 42);
}

}  // namespace
}  // namespace hypersub::sim
