// Chord DHT tests: ring helpers, routing state, oracle construction with
// and without PNS, lookup correctness, the maintenance protocol (join,
// stabilize, failure recovery).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "chord/chord_net.hpp"
#include "chord/chord_node.hpp"
#include "chord/ring.hpp"
#include "common/stats.hpp"
#include "net/network.hpp"

namespace hypersub::chord {
namespace {

struct Stack {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<ChordNet> chord;
};

Stack make_stack(std::size_t n, bool pns = true, std::uint64_t seed = 1) {
  Stack s;
  net::KingLikeTopology::Params tp;
  tp.hosts = n;
  tp.seed = seed;
  s.topo = std::make_unique<net::KingLikeTopology>(tp);
  s.sim = std::make_unique<sim::Simulator>();
  s.net = std::make_unique<net::Network>(*s.sim, *s.topo);
  ChordNet::Params cp;
  cp.pns = pns;
  cp.seed = seed;
  s.chord = std::make_unique<ChordNet>(*s.net, cp);
  return s;
}

// ---------------------------------------------------------------------------
// ring helpers
// ---------------------------------------------------------------------------

TEST(RingHelpers, RandomIdsUnique) {
  Rng rng(3);
  const auto ids = random_ids(1000, rng);
  auto sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(RingHelpers, SuccessorIndex) {
  const std::vector<Id> ids{10, 20, 30};
  EXPECT_EQ(successor_index(ids, 5), 0u);
  EXPECT_EQ(successor_index(ids, 10), 0u);
  EXPECT_EQ(successor_index(ids, 11), 1u);
  EXPECT_EQ(successor_index(ids, 30), 2u);
  EXPECT_EQ(successor_index(ids, 31), 0u);  // wrap
}

// ---------------------------------------------------------------------------
// ChordNode state machine
// ---------------------------------------------------------------------------

TEST(ChordNode, SuccessorListDedupAndCap) {
  ChordNode n(100, 0, 3);
  n.set_successor(NodeRef{200, 1});
  n.set_successor(NodeRef{150, 2});
  EXPECT_EQ(n.successor().id, 150u);
  ASSERT_EQ(n.successor_list().size(), 2u);
  n.set_successor(NodeRef{150, 2});  // idempotent
  EXPECT_EQ(n.successor_list().size(), 2u);
  n.adopt_successor_list(NodeRef{120, 3},
                         {NodeRef{150, 2}, NodeRef{200, 1}, NodeRef{300, 4}});
  EXPECT_EQ(n.successor().id, 120u);
  EXPECT_EQ(n.successor_list().size(), 3u);  // capped
}

TEST(ChordNode, AdoptListSkipsSelf) {
  ChordNode n(100, 0, 4);
  n.adopt_successor_list(NodeRef{200, 1}, {NodeRef{100, 0}, NodeRef{300, 2}});
  ASSERT_EQ(n.successor_list().size(), 2u);
  EXPECT_EQ(n.successor_list()[1].id, 300u);
}

TEST(ChordNode, RemovePeerScrubsEverywhere) {
  ChordNode n(100, 0, 4);
  n.adopt_successor_list(NodeRef{200, 1}, {NodeRef{300, 2}});
  n.set_predecessor(NodeRef{300, 2});
  n.set_finger(5, NodeRef{300, 2});
  n.remove_peer(300);
  EXPECT_EQ(n.successor_list().size(), 1u);
  EXPECT_FALSE(n.predecessor().valid());
  EXPECT_FALSE(n.finger(5).valid());
}

TEST(ChordNode, OwnsUsesPredecessor) {
  ChordNode n(100, 0, 4);
  n.set_predecessor(NodeRef{50, 1});
  EXPECT_TRUE(n.owns(100));
  EXPECT_TRUE(n.owns(51));
  EXPECT_FALSE(n.owns(50));
  EXPECT_FALSE(n.owns(101));
}

TEST(ChordNode, ClosestPrecedingPicksGreatestProgress) {
  ChordNode n(0, 0, 4);
  n.set_finger(10, NodeRef{1 << 10, 1});
  n.set_finger(20, NodeRef{1 << 20, 2});
  n.set_finger(30, NodeRef{1 << 30, 3});
  // Target beyond all fingers: greatest finger wins.
  EXPECT_EQ(n.closest_preceding(Id{1} << 40).id, Id{1} << 30);
  // Target between fingers: the one below it wins.
  EXPECT_EQ(n.closest_preceding((Id{1} << 20) + 5).id, Id{1} << 20);
  // No known node in (self, target): self.
  EXPECT_EQ(n.closest_preceding(5).id, 0u);
}

TEST(ChordNode, NeighborsDedupes) {
  ChordNode n(100, 0, 4);
  n.adopt_successor_list(NodeRef{200, 1}, {NodeRef{300, 2}});
  n.set_finger(1, NodeRef{200, 1});
  n.set_finger(2, NodeRef{400, 3});
  n.set_predecessor(NodeRef{50, 4});
  const auto nb = n.neighbors();
  EXPECT_EQ(nb.size(), 4u);  // 200, 300, 400, 50
}

// ---------------------------------------------------------------------------
// oracle construction + lookup
// ---------------------------------------------------------------------------

TEST(ChordOracle, RingOrderAndOwnership) {
  auto s = make_stack(64);
  s.chord->oracle_build();
  const auto ring = s.chord->oracle_ring();
  ASSERT_EQ(ring.size(), 64u);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const ChordNode& nd = s.chord->node(ring[i].host);
    EXPECT_EQ(nd.successor().id, ring[(i + 1) % ring.size()].id);
    EXPECT_EQ(nd.predecessor().id,
              ring[(i + ring.size() - 1) % ring.size()].id);
  }
}

TEST(ChordOracle, FingersPointAtOrAfterStart) {
  auto s = make_stack(64, /*pns=*/false);
  s.chord->oracle_build();
  for (net::HostIndex h = 0; h < 64; ++h) {
    const ChordNode& nd = s.chord->node(h);
    for (int i = 0; i < kIdBits; ++i) {
      const Id start = ring::finger_start(nd.id(), i);
      const NodeRef f = nd.finger(i);
      ASSERT_TRUE(f.valid());
      // Without PNS the finger is exactly the successor of the start.
      EXPECT_EQ(f.id, s.chord->oracle_successor(start).id);
    }
  }
}

TEST(ChordOracle, PnsFingersStayInInterval) {
  auto s = make_stack(128, /*pns=*/true);
  s.chord->oracle_build();
  for (net::HostIndex h = 0; h < 128; h += 17) {
    const ChordNode& nd = s.chord->node(h);
    for (int i = 0; i < kIdBits - 1; ++i) {
      const Id start = ring::finger_start(nd.id(), i);
      const Id next = ring::finger_start(nd.id(), i + 1);
      const NodeRef f = nd.finger(i);
      ASSERT_TRUE(f.valid());
      const NodeRef succ = s.chord->oracle_successor(start);
      if (ring::in_closed_open(succ.id, start, next)) {
        // Candidates existed in the interval; the chosen finger must be one.
        EXPECT_TRUE(ring::in_closed_open(f.id, start, next));
        // And be no farther (in latency) than the plain successor.
        EXPECT_LE(s.topo->latency(h, f.host), s.topo->latency(h, succ.host));
      } else {
        EXPECT_EQ(f.id, succ.id);
      }
    }
  }
}

TEST(ChordLookup, FindsOracleOwner) {
  auto s = make_stack(200);
  s.chord->oracle_build();
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const Id key = rng.next_u64();
    const auto from = net::HostIndex(rng.index(200));
    bool done = false;
    s.chord->route(from, key, 0, [&](const ChordNet::RouteResult& r) {
      done = true;
      EXPECT_EQ(r.owner.id, s.chord->oracle_successor(key).id);
      EXPECT_GE(r.hops, 0);
    });
    s.sim->run();
    EXPECT_TRUE(done);
  }
}

TEST(ChordLookup, HopsAreLogarithmic) {
  auto s = make_stack(512);
  s.chord->oracle_build();
  Rng rng(5);
  Summary hops;
  for (int i = 0; i < 300; ++i) {
    const Id key = rng.next_u64();
    s.chord->route(net::HostIndex(rng.index(512)), key, 0,
                   [&](const ChordNet::RouteResult& r) {
                     hops.add(double(r.hops));
                   });
  }
  s.sim->run();
  EXPECT_EQ(hops.count(), 300u);
  // ~0.5 log2(512) = 4.5 expected; allow generous headroom.
  EXPECT_LT(hops.mean(), 9.0);
  EXPECT_GT(hops.mean(), 2.0);
}

TEST(ChordLookup, KeyOwnedBySourceTakesZeroHops) {
  auto s = make_stack(32);
  s.chord->oracle_build();
  const ChordNode& nd = s.chord->node(0);
  bool done = false;
  s.chord->route(0, nd.id(), 0, [&](const ChordNet::RouteResult& r) {
    done = true;
    EXPECT_EQ(r.hops, 0);
    EXPECT_EQ(r.owner.host, net::HostIndex{0});
  });
  s.sim->run();
  EXPECT_TRUE(done);
}

// ---------------------------------------------------------------------------
// protocol maintenance
// ---------------------------------------------------------------------------

TEST(ChordProtocol, JoinIntegratesNewNode) {
  auto s = make_stack(33);
  // Build the ring over the first 32 hosts only: host 32 starts isolated.
  s.net->kill(32);
  s.chord->oracle_build();
  s.net->revive(32);

  s.chord->join(32, 0);
  s.sim->run_until(s.sim->now() + 100.0);
  s.chord->start_maintenance();
  // A few periods of stabilization should wire host 32 in fully.
  s.sim->run_until(s.sim->now() + 20000.0);

  const auto ring = s.chord->oracle_ring();
  // Successor pointers around host 32 are consistent with the true ring.
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const ChordNode& nd = s.chord->node(ring[i].host);
    EXPECT_EQ(nd.successor().id, ring[(i + 1) % ring.size()].id)
        << "host " << ring[i].host;
  }
}

TEST(ChordProtocol, FailureRepairsSuccessors) {
  auto s = make_stack(48);
  s.chord->oracle_build();
  s.chord->start_maintenance();
  s.sim->run_until(1000.0);

  // Kill 4 nodes; the survivors must converge to the reduced ring.
  for (net::HostIndex h : {3u, 11u, 27u, 40u}) s.chord->fail(h);
  s.sim->run_until(s.sim->now() + 60000.0);

  const auto ring = s.chord->oracle_ring();
  ASSERT_EQ(ring.size(), 44u);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const ChordNode& nd = s.chord->node(ring[i].host);
    EXPECT_EQ(nd.successor().id, ring[(i + 1) % ring.size()].id)
        << "host " << ring[i].host;
  }
  // Lookups still reach the correct owners. (run_until, not run():
  // periodic maintenance keeps the event queue non-empty forever.)
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    const Id key = rng.next_u64();
    net::HostIndex from = ring[rng.index(ring.size())].host;
    bool done = false;
    s.chord->route(from, key, 0, [&](const ChordNet::RouteResult& r) {
      done = true;
      EXPECT_EQ(r.owner.id, s.chord->oracle_successor(key).id);
    });
    s.sim->run_until(s.sim->now() + 10000.0);
    EXPECT_TRUE(done);
  }
}

class ChordSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChordSizeTest, LookupCorrectAcrossSizes) {
  auto s = make_stack(GetParam(), true, 7);
  s.chord->oracle_build();
  Rng rng(21);
  for (int i = 0; i < 60; ++i) {
    const Id key = rng.next_u64();
    bool done = false;
    s.chord->route(net::HostIndex(rng.index(GetParam())), key, 0,
                   [&](const ChordNet::RouteResult& r) {
                     done = true;
                     EXPECT_EQ(r.owner.id, s.chord->oracle_successor(key).id);
                   });
    s.sim->run();
    EXPECT_TRUE(done);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChordSizeTest,
                         ::testing::Values(2, 3, 8, 64, 300, 1000));

}  // namespace
}  // namespace hypersub::chord

namespace hypersub::chord {
namespace {

// A storm of concurrent protocol joins against a small seed ring must
// converge to a consistent ring (successor pointers exact, lookups land on
// oracle owners).
TEST(ChordProtocol, ConcurrentJoinStormConverges) {
  auto s = make_stack(40, true, 23);
  // Seed ring: first 8 hosts; the other 32 join concurrently.
  for (net::HostIndex h = 8; h < 40; ++h) s.net->kill(h);
  s.chord->oracle_build();
  for (net::HostIndex h = 8; h < 40; ++h) s.net->revive(h);
  s.chord->start_maintenance();

  Rng rng(3);
  for (net::HostIndex h = 8; h < 40; ++h) {
    const auto bootstrap = net::HostIndex(rng.index(8));
    // All joins fire within one stabilization period.
    s.sim->schedule(rng.uniform(0.0, 400.0), [&, h, bootstrap] {
      s.chord->join(h, bootstrap);
    });
  }
  s.sim->run_until(s.sim->now() + 120000.0);

  const auto ring = s.chord->oracle_ring();
  ASSERT_EQ(ring.size(), 40u);
  std::size_t exact = 0;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    if (s.chord->node(ring[i].host).successor().id ==
        ring[(i + 1) % ring.size()].id) {
      ++exact;
    }
  }
  EXPECT_EQ(exact, ring.size());

  for (int i = 0; i < 40; ++i) {
    const Id key = rng.next_u64();
    bool done = false;
    s.chord->route(ring[rng.index(ring.size())].host, key, 0,
                   [&](const ChordNet::RouteResult& r) {
                     done = true;
                     EXPECT_EQ(r.owner.id, s.chord->oracle_successor(key).id);
                   });
    s.sim->run_until(s.sim->now() + 10000.0);
    EXPECT_TRUE(done);
  }
}

// Simultaneous failures and joins: the ring must reconverge to the live
// membership.
TEST(ChordProtocol, MixedChurnConverges) {
  auto s = make_stack(36, true, 29);
  s.net->kill(34);
  s.net->kill(35);
  s.chord->oracle_build();
  s.chord->start_maintenance();
  s.sim->run_until(1000.0);

  s.chord->fail(3);
  s.chord->fail(17);
  s.net->revive(34);
  s.net->revive(35);
  s.chord->join(34, 0);
  s.chord->join(35, 1);
  s.sim->run_until(s.sim->now() + 120000.0);

  const auto ring = s.chord->oracle_ring();
  ASSERT_EQ(ring.size(), 34u);  // 36 - 2 failed (34, 35 joined back)
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(s.chord->node(ring[i].host).successor().id,
              ring[(i + 1) % ring.size()].id)
        << "host " << ring[i].host;
  }
}

}  // namespace
}  // namespace hypersub::chord
