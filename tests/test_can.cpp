// CAN overlay tests: construction invariants, greedy routing, and the
// region multicast used by the Meghdoot-like baseline.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "can/can_net.hpp"
#include "net/topology.hpp"

namespace hypersub::can {
namespace {

struct Stack {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<CanNet> can;
};

Stack make_stack(std::size_t n, std::size_t dims, std::uint64_t seed = 1) {
  Stack s;
  net::KingLikeTopology::Params tp;
  tp.hosts = n;
  tp.seed = seed;
  s.topo = std::make_unique<net::KingLikeTopology>(tp);
  s.sim = std::make_unique<sim::Simulator>();
  s.net = std::make_unique<net::Network>(*s.sim, *s.topo);
  s.can = std::make_unique<CanNet>(*s.net, CanNet::Params{dims, seed});
  return s;
}

class CanBuildTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(CanBuildTest, InvariantsHoldAfterConstruction) {
  const auto [n, dims] = GetParam();
  auto s = make_stack(n, dims);
  EXPECT_TRUE(s.can->check_invariants());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CanBuildTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 2},
                      std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{50, 2},
                      std::pair<std::size_t, std::size_t>{100, 3},
                      std::pair<std::size_t, std::size_t>{200, 4},
                      std::pair<std::size_t, std::size_t>{100, 8}));

TEST(Can, OwnerOfIsConsistentWithZones) {
  auto s = make_stack(64, 2);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Point p{rng.uniform(0, 1), rng.uniform(0, 1)};
    const auto h = s.can->owner_of(p);
    EXPECT_TRUE(s.can->node(h).zone.contains(p));
  }
}

TEST(Can, RouteReachesOwner) {
  auto s = make_stack(128, 2, 7);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const Point p{rng.uniform(0, 1), rng.uniform(0, 1)};
    const auto from = net::HostIndex(rng.index(128));
    bool done = false;
    s.can->route(from, p, 50, [&](const CanNet::RouteResult& r) {
      done = true;
      EXPECT_TRUE(s.can->node(r.owner).zone.contains(p));
      EXPECT_GE(r.hops, 0);
    });
    s.sim->run();
    EXPECT_TRUE(done);
  }
}

TEST(Can, RouteFromOwnerTakesZeroHops) {
  auto s = make_stack(32, 2);
  const Point p{0.5, 0.5};
  const auto owner = s.can->owner_of(p);
  bool done = false;
  s.can->route(owner, p, 10, [&](const CanNet::RouteResult& r) {
    done = true;
    EXPECT_EQ(r.hops, 0);
    EXPECT_EQ(r.owner, owner);
  });
  s.sim->run();
  EXPECT_TRUE(done);
}

TEST(Can, RegionMulticastVisitsExactlyOverlappingZones) {
  auto s = make_stack(100, 2, 11);
  const HyperRect region({{0.2, 0.6}, {0.3, 0.7}});
  const Point start{0.4, 0.5};

  std::set<net::HostIndex> expected;
  for (net::HostIndex h = 0; h < 100; ++h) {
    if (s.can->node(h).zone.overlaps(region)) expected.insert(h);
  }

  std::set<net::HostIndex> visited;
  bool done = false;
  s.can->region_multicast(
      3, start, region, 100,
      [&](net::HostIndex h, int) { visited.insert(h); },
      [&](int max_hops) {
        done = true;
        EXPECT_GE(max_hops, 0);
      });
  s.sim->run();
  EXPECT_TRUE(done);
  EXPECT_EQ(visited, expected);
}

TEST(Can, RegionMulticastVisitsEachZoneOnce) {
  auto s = make_stack(80, 2, 13);
  const HyperRect region({{0.0, 1.0}, {0.0, 1.0}});
  std::vector<net::HostIndex> visits;
  bool done = false;
  s.can->region_multicast(
      0, Point{0.1, 0.1}, region, 100,
      [&](net::HostIndex h, int) { visits.push_back(h); },
      [&](int) { done = true; });
  s.sim->run();
  EXPECT_TRUE(done);
  std::set<net::HostIndex> uniq(visits.begin(), visits.end());
  EXPECT_EQ(uniq.size(), visits.size()) << "a zone was visited twice";
  EXPECT_EQ(uniq.size(), 80u) << "full-space region must reach every zone";
}

TEST(Can, TrafficIsAccounted) {
  auto s = make_stack(64, 2);
  s.can->route(0, Point{0.9, 0.9}, 123, [](const CanNet::RouteResult&) {});
  s.sim->run();
  // Unless host 0 owned the point, at least one message was charged.
  if (s.can->owner_of(Point{0.9, 0.9}) != 0) {
    EXPECT_GT(s.net->total_bytes(), 0u);
  }
}

}  // namespace
}  // namespace hypersub::can
