// Property-based sweeps across both DHT substrates:
//   * delivery == brute force after random subscribe/unsubscribe interleaving
//   * zone-state structural invariants hold after quiescence
//   * overlay conformance (ownership partition, route agreement)
// parameterized over {Chord, Pastry} x seeds.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "net/topology.hpp"
#include "pastry/pastry_net.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub {
namespace {

struct Substrate {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<chord::ChordNet> chord;
  std::unique_ptr<pastry::PastryNet> pastry;
  overlay::Overlay* dht = nullptr;
};

Substrate make_substrate(const std::string& kind, std::size_t n,
                         std::uint64_t seed) {
  Substrate s;
  net::KingLikeTopology::Params tp;
  tp.hosts = n;
  tp.seed = seed;
  s.topo = std::make_unique<net::KingLikeTopology>(tp);
  s.sim = std::make_unique<sim::Simulator>();
  s.net = std::make_unique<net::Network>(*s.sim, *s.topo);
  if (kind == "chord") {
    chord::ChordNet::Params cp;
    cp.seed = seed;
    s.chord = std::make_unique<chord::ChordNet>(*s.net, cp);
    s.chord->oracle_build();
    s.dht = s.chord.get();
  } else {
    pastry::PastryNet::Params pp;
    pp.seed = seed;
    s.pastry = std::make_unique<pastry::PastryNet>(*s.net, pp);
    s.pastry->oracle_build();
    s.dht = s.pastry.get();
  }
  return s;
}

using Param = std::pair<std::string, std::uint64_t>;  // substrate, seed

class SubstrateProperty : public ::testing::TestWithParam<Param> {};

TEST_P(SubstrateProperty, OwnershipPartitionAndRouteAgreement) {
  const auto& [kind, seed] = GetParam();
  auto s = make_substrate(kind, 72, seed);
  Rng rng(seed * 31 + 1);
  for (int i = 0; i < 100; ++i) {
    const Id key = rng.next_u64();
    std::size_t owners = 0;
    net::HostIndex owner_host = 0;
    for (net::HostIndex h = 0; h < 72; ++h) {
      if (s.dht->owns(h, key)) {
        ++owners;
        owner_host = h;
      }
    }
    ASSERT_EQ(owners, 1u) << kind << " key " << key;
    bool done = false;
    s.dht->route(net::HostIndex(rng.index(72)), key, 0,
                 [&](const overlay::Overlay::RouteResult& r) {
                   done = true;
                   EXPECT_EQ(r.owner.host, owner_host);
                 });
    s.sim->run();
    EXPECT_TRUE(done);
  }
}

TEST_P(SubstrateProperty, NextHopNeverLoopsToSelf) {
  const auto& [kind, seed] = GetParam();
  auto s = make_substrate(kind, 48, seed);
  Rng rng(seed * 37 + 5);
  for (int i = 0; i < 200; ++i) {
    const Id key = rng.next_u64();
    for (net::HostIndex h = 0; h < 48; h += 7) {
      if (s.dht->owns(h, key)) continue;
      const overlay::Peer next = s.dht->next_hop(h, key);
      ASSERT_TRUE(next.valid());
      EXPECT_NE(next.host, h);
    }
  }
}

TEST_P(SubstrateProperty, ChurningSubscriptionsStayExact) {
  const auto& [kind, seed] = GetParam();
  auto s = make_substrate(kind, 50, seed);
  core::HyperSubSystem sys(*s.dht);
  workload::WorkloadGenerator gen(workload::table1_spec(), seed * 41 + 7);
  core::SchemeOptions opt;
  opt.zone_cfg = {1, 20};
  const auto scheme = sys.add_scheme(gen.scheme(), opt);

  struct Owned {
    core::SubscriptionHandle handle;
    pubsub::Subscription sub;
  };
  std::vector<Owned> live;
  Rng rng(seed * 43 + 9);

  // Interleave subscribes, unsubscribes, and events; after each batch the
  // delivery set must equal brute force over the live subscriptions.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 40; ++i) {
      const auto host = net::HostIndex(rng.index(50));
      const auto sub = gen.make_subscription();
      live.push_back({sys.subscribe(host, scheme, sub), sub});
    }
    // Unsubscribe ~25% of live subscriptions.
    std::vector<Owned> keep;
    for (const auto& o : live) {
      if (rng.chance(0.25)) {
        sys.unsubscribe(o.handle);
      } else {
        keep.push_back(o);
      }
    }
    live = std::move(keep);
    s.sim->run();

    const std::size_t before = sys.deliveries().size();
    auto e = gen.make_event();
    sys.publish(net::HostIndex(rng.index(50)), scheme, e);
    s.sim->run();
    sys.finalize_events();

    std::multiset<std::pair<std::size_t, std::uint32_t>> got, expect;
    for (std::size_t i = before; i < sys.deliveries().size(); ++i) {
      got.insert({sys.deliveries()[i].subscriber, sys.deliveries()[i].iid});
    }
    for (const auto& o : live) {
      if (o.sub.matches(e.point)) {
        expect.insert({o.handle.subscriber, o.handle.iid});
      }
    }
    EXPECT_EQ(got, expect) << kind << " round " << round;
    // Structural invariants hold at quiescence.
    EXPECT_TRUE(sys.check_zone_invariants()) << kind << " round " << round;
  }
  EXPECT_EQ(sys.total_subscriptions(), live.size());
}

INSTANTIATE_TEST_SUITE_P(
    Substrates, SubstrateProperty,
    ::testing::Values(Param{"chord", 1}, Param{"chord", 2},
                      Param{"chord", 3}, Param{"pastry", 1},
                      Param{"pastry", 2}, Param{"pastry", 3}),
    [](const auto& tinfo) {
      return tinfo.param.first + "_seed" + std::to_string(tinfo.param.second);
    });

}  // namespace
}  // namespace hypersub
