// Determinism regression: two runs with the same seed and configuration
// must be bit-identical — the same metrics snapshot JSON and the same span
// log, span for span. The simulator's FIFO tie-break, the counter-based
// trace ids, and the hash-based sampling decision are all designed for
// this; any wall-clock, pointer-order, or container-order leak into the
// simulation breaks it and shows up here.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "core/load_balancer.hpp"
#include "metrics/snapshot.hpp"
#include "net/topology.hpp"
#include "trace/tracer.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub {
namespace {

struct RunOutput {
  std::string metrics_json;
  std::vector<trace::Span> spans;
  std::uint64_t traces_started = 0;
  std::size_t deliveries = 0;
};

struct RunOpts {
  bool reliable = false;
  std::size_t replicas = 0;
  bool cache = false;
  bool batch = false;
  bool churn = false;
  bool load_balance = false;
  // Covering-based aggregation; subscriptions are drawn from a small pool
  // (instead of all-fresh) so quench/promotion paths actually execute.
  bool cover = false;
  double sample_rate = 1.0;
  // Parallel engine: >1 worker threads shard execution by host. Lookahead
  // clamps the minimum network latency in BOTH modes, so the sequential
  // reference must use the same value as the parallel run it is compared
  // against.
  unsigned threads = 1;
  double lookahead = 0.0;
  // Derive the lookahead floor from the topology's minimum live link
  // latency (Network::enable_adaptive_lookahead). Must be set on the
  // sequential reference too: the floor also delays cross-shard control
  // handoffs, so it is part of the compared configuration.
  bool adaptive = false;
};

/// One full simulated run: build, subscribe, (optionally churn), publish,
/// finalize; returns everything an identical twin must reproduce exactly.
RunOutput run_once(RunOpts o) {
  constexpr std::size_t kHosts = 40;
  net::KingLikeTopology::Params tp;
  tp.hosts = kHosts;
  tp.seed = 13;
  net::KingLikeTopology topo(tp);
  sim::Simulator sim;
  sim.set_threads(o.threads);
  sim.set_lookahead(o.lookahead);
  net::Network net(sim, topo);
  if (o.adaptive) {
    net.enable_adaptive_lookahead();
    EXPECT_GT(sim.lookahead_floor(), 0.0);
  }
  chord::ChordNet::Params cp;
  cp.seed = 13;
  cp.reliable_routing = o.reliable;
  chord::ChordNet chord(net, cp);
  core::HyperSubSystem::Config sc;
  sc.bootstrap = core::BootstrapMode::kOracle;
  sc.reliable_delivery = o.reliable;
  sc.replicas = o.replicas;
  sc.route_cache = o.cache;
  sc.batch_forwarding = o.batch;
  sc.cover_aggregation = o.cover;
  sc.trace_sample_rate = o.sample_rate;
  core::HyperSubSystem sys(chord, sc);
  trace::Tracer tracer;
  sys.set_tracer(&tracer);

  workload::WorkloadGenerator gen(workload::tiny_spec(), 17);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = sys.add_scheme(gen.scheme(), opt);
  Rng rng(19);
  std::vector<pubsub::Subscription> pool;
  if (o.cover) {
    for (int i = 0; i < 24; ++i) pool.push_back(gen.make_subscription());
  }
  for (int i = 0; i < 120; ++i) {
    sys.subscribe(net::HostIndex(rng.index(kHosts)), scheme,
                  o.cover ? pool[rng.index(pool.size())]
                          : gen.make_subscription());
  }
  sim.run();

  if (o.load_balance) {
    core::LoadBalancer::Config lc;
    lc.delta = 0.1;
    core::LoadBalancer lb(sys, lc);
    lb.run_round();
    sim.run();
  }
  if (o.churn) {
    for (net::HostIndex k = 0; k < kHosts; k += 4) chord.fail(k);
  }

  for (int i = 0; i < 40; ++i) {
    net::HostIndex pub = net::HostIndex(rng.index(kHosts));
    while (!net.alive(pub)) pub = (pub + 1) % kHosts;
    sys.publish(pub, scheme, gen.make_event());
  }
  sim.run();
  sys.finalize_events();

  RunOutput out;
  out.metrics_json = metrics::snapshot(sys).to_json();
  out.spans = tracer.spans();
  out.traces_started = tracer.traces_started();
  out.deliveries = sys.deliveries().size();
  return out;
}

void expect_identical(const RunOutput& a, const RunOutput& b) {
  // Byte-identical metrics JSON: every counter, mean, and histogram the
  // snapshot carries.
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  // Identical span logs: same count, same ids, same order, same
  // timestamps, same payloads (Span has defaulted operator==).
  EXPECT_EQ(a.traces_started, b.traces_started);
  ASSERT_EQ(a.spans.size(), b.spans.size());
  for (std::size_t i = 0; i < a.spans.size(); ++i) {
    ASSERT_EQ(a.spans[i], b.spans[i]) << "span log diverges at index " << i;
  }
  EXPECT_EQ(a.deliveries, b.deliveries);
}

TEST(Determinism, BaselineRunIsReproducible) {
  expect_identical(run_once({}), run_once({}));
}

TEST(Determinism, FastLaneRunIsReproducible) {
  const RunOpts o{.cache = true, .batch = true, .load_balance = true};
  expect_identical(run_once(o), run_once(o));
}

TEST(Determinism, ChurnWithReliabilityIsReproducible) {
  const RunOpts o{.reliable = true, .replicas = 2, .churn = true};
  expect_identical(run_once(o), run_once(o));
}

TEST(Determinism, CoverAggregationRunIsReproducible) {
  const RunOpts o{.load_balance = true, .cover = true};
  expect_identical(run_once(o), run_once(o));
}

TEST(Determinism, SampledTracingIsReproducibleAndStableAcrossRates) {
  const RunOpts half{.sample_rate = 0.5};
  const auto a = run_once(half);
  const auto b = run_once(half);
  expect_identical(a, b);
  ASSERT_GT(a.spans.size(), 0u);

  // Changing only the sample rate never renumbers traces: the rate-0.5
  // span log is exactly the full log filtered to the sampled trace ids.
  const auto full = run_once({.sample_rate = 1.0});
  EXPECT_EQ(full.traces_started, a.traces_started);
  std::vector<trace::Span> filtered;
  for (const auto& s : full.spans) {
    if (trace::Tracer::sampled(s.trace, 0.5)) filtered.push_back(s);
  }
  ASSERT_EQ(filtered.size(), a.spans.size());
  for (std::size_t i = 0; i < filtered.size(); ++i) {
    // Same trees, same timestamps, same payloads; only the span ids shift
    // (they are allocated per recorded span).
    EXPECT_EQ(filtered[i].trace, a.spans[i].trace);
    EXPECT_EQ(filtered[i].kind, a.spans[i].kind);
    EXPECT_EQ(filtered[i].node, a.spans[i].node);
    EXPECT_DOUBLE_EQ(filtered[i].start_ms, a.spans[i].start_ms);
    EXPECT_DOUBLE_EQ(filtered[i].end_ms, a.spans[i].end_ms);
    EXPECT_EQ(filtered[i].a, a.spans[i].a);
    EXPECT_EQ(filtered[i].b, a.spans[i].b);
  }
}

// --- parallel engine ---------------------------------------------------
// A run with N worker threads must be byte-identical to the sequential run
// with the same lookahead: same metrics JSON, same span log (ids included),
// same delivery count. This is the engine's whole contract — threads are a
// pure speed knob.

constexpr double kLookahead = 5.0;
constexpr unsigned kThreadCounts[] = {2, 4, 8};

void expect_parallel_matches_sequential(RunOpts o) {
  o.threads = 1;
  o.lookahead = kLookahead;
  const RunOutput seq = run_once(o);
  for (const unsigned threads : kThreadCounts) {
    o.threads = threads;
    expect_identical(seq, run_once(o));
  }
}

TEST(ParallelDeterminism, BaselineMatchesSequential) {
  expect_parallel_matches_sequential({});
}

TEST(ParallelDeterminism, FastLaneMatchesSequential) {
  expect_parallel_matches_sequential(
      {.cache = true, .batch = true, .load_balance = true});
}

TEST(ParallelDeterminism, ChurnWithReliabilityMatchesSequential) {
  expect_parallel_matches_sequential(
      {.reliable = true, .replicas = 2, .churn = true});
}

TEST(ParallelDeterminism, CoverAggregationMatchesSequential) {
  // Quench/promotion bookkeeping is per-zone state on the owner's shard,
  // and the cover counters are commutative sums — thread count must not
  // show anywhere, pool-workload duplicates included.
  expect_parallel_matches_sequential({.load_balance = true, .cover = true});
}

TEST(ParallelDeterminism, SampledTracingMatchesSequential) {
  expect_parallel_matches_sequential({.sample_rate = 0.5});
}

TEST(ParallelDeterminism, AdaptiveLookaheadMatchesSequential) {
  // No explicit lookahead at all: the adaptive floor (minimum live link
  // latency) is what admits parallel execution, and work-stealing windows
  // under it must still match the sequential run byte for byte.
  RunOpts o{};
  o.adaptive = true;
  const RunOutput seq = run_once(o);
  for (const unsigned threads : kThreadCounts) {
    o.threads = threads;
    expect_identical(seq, run_once(o));
  }
}

TEST(ParallelDeterminism, AdaptiveLookaheadUnderChurnMatchesSequential) {
  // Node failures shrink the live set; kill() re-derives the floor between
  // windows. The re-derivation itself must be thread-count independent.
  RunOpts o{.reliable = true, .replicas = 2, .churn = true};
  o.adaptive = true;
  const RunOutput seq = run_once(o);
  for (const unsigned threads : kThreadCounts) {
    o.threads = threads;
    expect_identical(seq, run_once(o));
  }
}

TEST(ParallelDeterminism, AdaptiveFloorStacksWithExplicitLookahead) {
  // effective = max(lookahead, floor): an explicit lookahead below the
  // floor changes nothing relative to the floor alone.
  RunOpts o{};
  o.adaptive = true;
  o.lookahead = 1e-6;
  o.threads = 4;
  RunOpts floor_only{};
  floor_only.adaptive = true;
  expect_identical(run_once(floor_only), run_once(o));
}

TEST(ParallelDeterminism, LookaheadZeroFallsBackToSequential) {
  // threads without lookahead cannot parallelize safely; the simulator
  // runs such configurations sequentially and stays identical to the
  // plain sequential run (this also covers the seed configuration:
  // lookahead defaults to 0, so existing setups are untouched).
  RunOpts par{};
  par.threads = 4;
  expect_identical(run_once({}), run_once(par));
}

}  // namespace
}  // namespace hypersub
