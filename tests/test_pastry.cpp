// Pastry substrate tests: digit helpers, ownership agreement, routing
// correctness/progress, locality of table entries, and — the point of the
// exercise — HyperSub delivering exactly over Pastry instead of Chord.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "common/stats.hpp"
#include "core/hypersub_system.hpp"
#include "core/load_balancer.hpp"
#include "net/topology.hpp"
#include "pastry/pastry_net.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub::pastry {
namespace {

struct Stack {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<PastryNet> pastry;
};

Stack make_stack(std::size_t n, std::uint64_t seed = 1) {
  Stack s;
  net::KingLikeTopology::Params tp;
  tp.hosts = n;
  tp.seed = seed;
  s.topo = std::make_unique<net::KingLikeTopology>(tp);
  s.sim = std::make_unique<sim::Simulator>();
  s.net = std::make_unique<net::Network>(*s.sim, *s.topo);
  PastryNet::Params pp;
  pp.seed = seed;
  s.pastry = std::make_unique<PastryNet>(*s.net, pp);
  s.pastry->oracle_build();
  return s;
}

TEST(PastryDigits, DigitOf) {
  const Id id = 0xF123456789ABCDEFULL;
  EXPECT_EQ(digit_of(id, 0), 0xF);
  EXPECT_EQ(digit_of(id, 1), 0x1);
  EXPECT_EQ(digit_of(id, 15), 0xF);
}

TEST(PastryDigits, SharedPrefix) {
  EXPECT_EQ(shared_prefix_digits(0x1234ULL << 48, 0x1235ULL << 48), 3);
  EXPECT_EQ(shared_prefix_digits(5, 5), kDigits);
  EXPECT_EQ(shared_prefix_digits(Id{1} << 63, 0), 0);
}

TEST(PastryDigits, CircularDistance) {
  EXPECT_EQ(circular_distance(10, 14), 4u);
  EXPECT_EQ(circular_distance(14, 10), 4u);
  EXPECT_EQ(circular_distance(~Id{0}, 1), 2u);
}

TEST(PastryDigits, CloserToIsDeterministicTotal) {
  const Peer a{100, 0}, b{110, 1};
  EXPECT_TRUE(closer_to(101, a, b));
  EXPECT_TRUE(closer_to(109, b, a));
  // Exact midpoint: clockwise (successor side) wins — 105 -> 110 is
  // clockwise distance 5, 105 -> 100 is counter-clockwise 5.
  EXPECT_TRUE(closer_to(105, b, a));
  EXPECT_FALSE(closer_to(105, a, b));
}

TEST(Pastry, OwnershipPartitionsKeySpace) {
  auto s = make_stack(64);
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const Id key = rng.next_u64();
    // Exactly one node claims ownership, and it is the oracle owner.
    std::size_t owners = 0;
    net::HostIndex owner = 0;
    for (net::HostIndex h = 0; h < 64; ++h) {
      if (s.pastry->owns(h, key)) {
        ++owners;
        owner = h;
      }
    }
    EXPECT_EQ(owners, 1u) << "key " << key;
    EXPECT_EQ(s.pastry->id_of(owner), s.pastry->oracle_owner(key).id);
  }
}

TEST(Pastry, RouteReachesOracleOwner) {
  auto s = make_stack(256, 7);
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const Id key = rng.next_u64();
    const auto from = net::HostIndex(rng.index(256));
    bool done = false;
    s.pastry->route(from, key, 0,
                    [&](const overlay::Overlay::RouteResult& r) {
                      done = true;
                      EXPECT_EQ(r.owner.id, s.pastry->oracle_owner(key).id);
                    });
    s.sim->run();
    EXPECT_TRUE(done);
  }
}

TEST(Pastry, HopsAreLogarithmicInDigits) {
  auto s = make_stack(512, 11);
  Rng rng(13);
  Summary hops;
  for (int i = 0; i < 300; ++i) {
    s.pastry->route(net::HostIndex(rng.index(512)), rng.next_u64(), 0,
                    [&](const overlay::Overlay::RouteResult& r) {
                      hops.add(double(r.hops));
                    });
  }
  s.sim->run();
  EXPECT_EQ(hops.count(), 300u);
  // Pastry resolves ~log16(512) ≈ 2.25 digits; leaf jumps add ~1.
  EXPECT_LT(hops.mean(), 6.0);
}

TEST(Pastry, NextHopMakesNumericProgress) {
  auto s = make_stack(128, 15);
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const Id key = rng.next_u64();
    net::HostIndex at = net::HostIndex(rng.index(128));
    int steps = 0;
    while (!s.pastry->owns(at, key)) {
      const Peer next = s.pastry->next_hop(at, key);
      ASSERT_TRUE(next.valid()) << "dead end at host " << at;
      // Progress: strictly closer numerically, or one more prefix digit.
      const Id d_now = circular_distance(s.pastry->id_of(at), key);
      const Id d_next = circular_distance(next.id, key);
      const int p_now = shared_prefix_digits(s.pastry->id_of(at), key);
      const int p_next = shared_prefix_digits(next.id, key);
      EXPECT_TRUE(d_next < d_now || p_next > p_now);
      at = next.host;
      ASSERT_LT(++steps, 64) << "routing loop";
    }
  }
}

TEST(Pastry, TableEntriesMatchPrefixAndLocality) {
  auto s = make_stack(256, 19);
  for (net::HostIndex h = 0; h < 256; h += 37) {
    const PastryNode& nd = s.pastry->node(h);
    for (int r = 0; r < 3; ++r) {  // deep rows are mostly empty
      for (int c = 0; c < kDigitBase; ++c) {
        const Peer& e = nd.table(r, c);
        if (!e.valid()) continue;
        EXPECT_GE(shared_prefix_digits(e.id, nd.id()), r);
        EXPECT_EQ(digit_of(e.id, r), c);
      }
    }
  }
}

TEST(Pastry, LeafSetIsNearestNodes) {
  auto s = make_stack(64, 21);
  // Sorted ids for ground truth.
  std::vector<Id> ids;
  for (net::HostIndex h = 0; h < 64; ++h) ids.push_back(s.pastry->id_of(h));
  std::sort(ids.begin(), ids.end());
  for (net::HostIndex h = 0; h < 64; h += 11) {
    const PastryNode& nd = s.pastry->node(h);
    const auto it = std::find(ids.begin(), ids.end(), nd.id());
    const std::size_t i = std::size_t(it - ids.begin());
    // The immediate ring neighbors must be in the leaf set.
    std::set<Id> leaves;
    for (const auto& l : nd.leaf_set()) leaves.insert(l.id);
    EXPECT_TRUE(leaves.count(ids[(i + 1) % 64]));
    EXPECT_TRUE(leaves.count(ids[(i + 63) % 64]));
    EXPECT_EQ(leaves.size(), 16u);
  }
}

// The headline test: HyperSub over Pastry delivers the brute-force match
// set exactly — the paper's "applicable to other DHTs" claim.
TEST(Pastry, HyperSubDeliveryIsExactOverPastry) {
  auto s = make_stack(80, 23);
  core::HyperSubSystem sys(*s.pastry);
  workload::WorkloadGenerator gen(workload::table1_spec(), 25);
  core::SchemeOptions opt;
  opt.zone_cfg = {1, 20};
  const auto scheme = sys.add_scheme(gen.scheme(), opt);

  struct Owned {
    net::HostIndex host;
    std::uint32_t iid;
    pubsub::Subscription sub;
  };
  std::vector<Owned> subs;
  Rng rng(27);
  for (int i = 0; i < 240; ++i) {
    const auto host = net::HostIndex(rng.index(80));
    const auto sub = gen.make_subscription();
    const auto iid = sys.subscribe(host, scheme, sub).iid;
    subs.push_back({host, iid, sub});
  }
  s.sim->run();

  std::vector<pubsub::Event> events;
  std::vector<std::uint64_t> seqs;
  for (int i = 0; i < 100; ++i) {
    auto e = gen.make_event();
    seqs.push_back(sys.publish(net::HostIndex(rng.index(80)), scheme, e));
    events.push_back(e);
  }
  s.sim->run();
  sys.finalize_events();

  std::map<std::uint64_t, std::multiset<std::pair<std::size_t, std::uint32_t>>>
      actual;
  for (const auto& d : sys.deliveries()) {
    actual[d.event_seq].insert({d.subscriber, d.iid});
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    std::multiset<std::pair<std::size_t, std::uint32_t>> expected;
    for (const auto& o : subs) {
      if (o.sub.matches(events[i].point)) expected.insert({o.host, o.iid});
    }
    EXPECT_EQ(actual[seqs[i]], expected) << "event " << i;
  }
}

// Load balancing also works over Pastry (the migration arcs are plain ring
// arcs, substrate-independent).
TEST(Pastry, LoadBalancingWorksOverPastry) {
  auto s = make_stack(60, 29);
  core::HyperSubSystem sys(*s.pastry);
  workload::WorkloadGenerator gen(workload::table1_spec(), 31);
  core::SchemeOptions opt;
  opt.zone_cfg = {1, 20};
  const auto scheme = sys.add_scheme(gen.scheme(), opt);
  Rng rng(33);
  for (int i = 0; i < 400; ++i) {
    sys.subscribe(net::HostIndex(rng.index(60)), scheme,
                  gen.make_subscription());
  }
  s.sim->run();

  const auto before = sys.node_loads();
  const std::size_t max_before =
      *std::max_element(before.begin(), before.end());
  core::LoadBalancer::Config lc;
  lc.delta = 0.1;
  lc.min_load = 4;
  core::LoadBalancer lb(sys, lc);
  for (int i = 0; i < 3; ++i) lb.run_round();
  const auto after = sys.node_loads();
  const std::size_t max_after = *std::max_element(after.begin(), after.end());
  EXPECT_GT(lb.migrated_count(), 0u);
  EXPECT_LT(max_after, max_before);
}

}  // namespace
}  // namespace hypersub::pastry
