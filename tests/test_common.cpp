// Unit tests for the common substrate: ring arithmetic, hashing, intervals,
// hyper-rectangles, statistics, and Zipf sampling.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/hashing.hpp"
#include "common/hyperrect.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/zipf.hpp"

namespace hypersub {
namespace {

// ---------------------------------------------------------------------------
// ring arithmetic
// ---------------------------------------------------------------------------

TEST(Ring, DistanceBasics) {
  EXPECT_EQ(ring::distance(5, 5), 0u);
  EXPECT_EQ(ring::distance(5, 7), 2u);
  // Wrap-around: from near the top back past zero.
  EXPECT_EQ(ring::distance(~Id{0}, 1), 2u);
}

TEST(Ring, InOpen) {
  EXPECT_TRUE(ring::in_open(5, 3, 8));
  EXPECT_FALSE(ring::in_open(3, 3, 8));
  EXPECT_FALSE(ring::in_open(8, 3, 8));
  // Wrapping arc (10, 2).
  EXPECT_TRUE(ring::in_open(0, 10, 2));
  EXPECT_TRUE(ring::in_open(~Id{0}, 10, 2));
  EXPECT_FALSE(ring::in_open(5, 10, 2));
  // Empty arc.
  EXPECT_FALSE(ring::in_open(1, 4, 4));
}

TEST(Ring, InOpenClosed) {
  EXPECT_TRUE(ring::in_open_closed(8, 3, 8));
  EXPECT_FALSE(ring::in_open_closed(3, 3, 8));
  EXPECT_TRUE(ring::in_open_closed(1, 10, 2));
  // Degenerate arc (a, a] covers the whole ring.
  EXPECT_TRUE(ring::in_open_closed(123, 7, 7));
}

TEST(Ring, InClosedOpen) {
  EXPECT_TRUE(ring::in_closed_open(3, 3, 8));
  EXPECT_FALSE(ring::in_closed_open(8, 3, 8));
  EXPECT_TRUE(ring::in_closed_open(11, 10, 2));
}

TEST(Ring, FingerStart) {
  EXPECT_EQ(ring::finger_start(0, 0), 1u);
  EXPECT_EQ(ring::finger_start(0, 63), Id{1} << 63);
  // Wraps modulo 2^64.
  EXPECT_EQ(ring::finger_start(~Id{0}, 0), 0u);
}

// Exhaustive cross-check of the interval predicates against a model on a
// tiny ring.
TEST(Ring, IntervalModelCheck) {
  constexpr int kMod = 16;
  auto model_open = [](int x, int a, int b) {
    if (a == b) return false;
    for (int i = (a + 1) % kMod; i != b; i = (i + 1) % kMod) {
      if (i == x) return true;
    }
    return false;
  };
  for (int a = 0; a < kMod; ++a) {
    for (int b = 0; b < kMod; ++b) {
      for (int x = 0; x < kMod; ++x) {
        // Map the tiny ring into the top of the 64-bit ring so wrap
        // behaviour is exercised.
        const Id A = (~Id{0} - kMod + 1) + Id(a);
        const Id B = (~Id{0} - kMod + 1) + Id(b);
        const Id X = (~Id{0} - kMod + 1) + Id(x);
        EXPECT_EQ(ring::in_open(X, A, B), model_open(x, a, b))
            << "a=" << a << " b=" << b << " x=" << x;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// hashing
// ---------------------------------------------------------------------------

TEST(Hashing, Deterministic) {
  EXPECT_EQ(hash_string("table1"), hash_string("table1"));
  EXPECT_NE(hash_string("table1"), hash_string("table2"));
  EXPECT_NE(hash_string(""), hash_string("a"));
}

TEST(Hashing, Mix64Bijective) {
  // Distinct inputs -> distinct outputs on a sample (bijectivity spot check).
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(mix64(0), mix64(~std::uint64_t{0}));
}

TEST(Hashing, CombineOrderDependent) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

// ---------------------------------------------------------------------------
// intervals & hyperrects
// ---------------------------------------------------------------------------

TEST(Interval, Basics) {
  const Interval i{2.0, 5.0};
  EXPECT_TRUE(i.contains(2.0));
  EXPECT_TRUE(i.contains(5.0));
  EXPECT_FALSE(i.contains(5.0001));
  EXPECT_TRUE(i.covers(Interval{3, 4}));
  EXPECT_FALSE(i.covers(Interval{3, 6}));
  EXPECT_TRUE(i.overlaps(Interval{5, 9}));
  EXPECT_FALSE(i.overlaps(Interval{5.5, 9}));
  EXPECT_EQ(i.intersect(Interval{4, 9}), (Interval{4, 5}));
  EXPECT_EQ(i.hull(Interval{4, 9}), (Interval{2, 9}));
  EXPECT_DOUBLE_EQ(i.length(), 3.0);
  EXPECT_DOUBLE_EQ(i.center(), 3.5);
}

TEST(HyperRect, ContainsCoversOverlaps) {
  const HyperRect r({{0, 10}, {0, 4}});
  EXPECT_TRUE(r.contains(Point{5, 2}));
  EXPECT_FALSE(r.contains(Point{5, 4.5}));
  EXPECT_TRUE(r.covers(HyperRect({{1, 2}, {1, 2}})));
  EXPECT_FALSE(r.covers(HyperRect({{1, 11}, {1, 2}})));
  EXPECT_TRUE(r.overlaps(HyperRect({{9, 20}, {3, 9}})));
  EXPECT_FALSE(r.overlaps(HyperRect({{11, 20}, {3, 9}})));
}

TEST(HyperRect, HullWithEmpty) {
  const HyperRect empty;
  const HyperRect r({{1, 2}, {3, 4}});
  EXPECT_EQ(empty.hull(r), r);
  EXPECT_EQ(r.hull(empty), r);
  EXPECT_TRUE(empty.empty());
}

TEST(HyperRect, IntersectAndVolume) {
  const HyperRect a({{0, 10}, {0, 10}});
  const HyperRect b({{5, 15}, {5, 15}});
  EXPECT_EQ(a.intersect(b), HyperRect({{5, 10}, {5, 10}}));
  EXPECT_DOUBLE_EQ(a.intersect(b).volume_fraction(a), 0.25);
  EXPECT_DOUBLE_EQ(a.volume_fraction(a), 1.0);
}

TEST(HyperRect, UniformFactoryAndToString) {
  const HyperRect u = HyperRect::uniform(3, 0.0, 1.0);
  EXPECT_EQ(u.dimensions(), 3u);
  EXPECT_EQ(u.to_string(), "[0,1]x[0,1]x[0,1]");
}

// ---------------------------------------------------------------------------
// statistics
// ---------------------------------------------------------------------------

TEST(Summary, WelfordMoments) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Cdf, QuantilesAndFractions) {
  Cdf c;
  for (int i = 1; i <= 100; ++i) c.add(double(i));
  EXPECT_DOUBLE_EQ(c.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(50.0), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(1000.0), 1.0);
  EXPECT_DOUBLE_EQ(c.mean(), 50.5);
}

TEST(Cdf, CurveMonotone) {
  Cdf c;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) c.add(rng.uniform(0, 100));
  const auto curve = c.curve(20);
  ASSERT_EQ(curve.size(), 20u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Cdf, RankedDescending) {
  Cdf c;
  for (const double x : {3.0, 1.0, 2.0}) c.add(x);
  const auto r = c.ranked_desc();
  EXPECT_EQ(r, (std::vector<double>{3.0, 2.0, 1.0}));
}

// ---------------------------------------------------------------------------
// Zipf
// ---------------------------------------------------------------------------

TEST(Zipf, CdfIsNormalizedAndMonotone) {
  const ZipfSampler z(100, 0.95);
  EXPECT_DOUBLE_EQ(z.cdf(100), 1.0);
  for (std::size_t k = 2; k <= 100; ++k) {
    EXPECT_GT(z.cdf(k), z.cdf(k - 1));
    // pmf decreasing in rank
    EXPECT_LE(z.pmf(k), z.pmf(k - 1) + 1e-15);
  }
}

TEST(Zipf, SkewZeroIsUniform) {
  const ZipfSampler z(10, 0.0);
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(z.pmf(k), 0.1, 1e-12);
  }
}

TEST(Zipf, EmpiricalMatchesPmf) {
  const ZipfSampler z(50, 1.0);
  Rng rng(42);
  std::vector<std::size_t> counts(51, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];
  for (std::size_t k = 1; k <= 5; ++k) {
    EXPECT_NEAR(double(counts[k]) / kN, z.pmf(k), 0.01) << "rank " << k;
  }
}

class ZipfSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewTest, HigherSkewConcentratesMass) {
  const double s = GetParam();
  const ZipfSampler z(100, s);
  const ZipfSampler z_less(100, s / 2.0);
  // The top rank carries at least as much mass under higher skew.
  EXPECT_GE(z.pmf(1) + 1e-12, z_less.pmf(1));
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewTest,
                         ::testing::Values(0.2, 0.5, 0.8, 1.0, 1.5, 2.0));

// ---------------------------------------------------------------------------
// Rng determinism
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Rng a(1), b(1), c(2);
  const auto x = a.next_u64();
  EXPECT_EQ(x, b.next_u64());
  EXPECT_NE(x, c.next_u64());
}

TEST(Rng, ForkIndependence) {
  Rng a(1);
  Rng child = a.fork();
  // Child stream differs from parent's next outputs.
  EXPECT_NE(child.next_u64(), a.next_u64());
}

TEST(Rng, UniformBounds) {
  Rng a(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = a.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
    const auto u = a.uniform_u64(10, 12);
    EXPECT_GE(u, 10u);
    EXPECT_LE(u, 12u);
  }
}

}  // namespace
}  // namespace hypersub
