// Failure-injection tests: dead rendezvous nodes, publisher crashes,
// dropped messages, and tracker finalization under partial delivery.

#include <gtest/gtest.h>

#include <memory>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "net/topology.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub {
namespace {

struct Stack {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<chord::ChordNet> chord;
  std::unique_ptr<core::HyperSubSystem> sys;
};

Stack make_stack(std::size_t n, std::uint64_t seed = 1) {
  Stack s;
  net::KingLikeTopology::Params tp;
  tp.hosts = n;
  tp.seed = seed;
  s.topo = std::make_unique<net::KingLikeTopology>(tp);
  s.sim = std::make_unique<sim::Simulator>();
  s.net = std::make_unique<net::Network>(*s.sim, *s.topo);
  chord::ChordNet::Params cp;
  cp.seed = seed;
  s.chord = std::make_unique<chord::ChordNet>(*s.net, cp);
  core::HyperSubSystem::Config sc;
  sc.bootstrap = core::BootstrapMode::kOracle;
  s.sys = std::make_unique<core::HyperSubSystem>(*s.chord, sc);
  return s;
}

std::uint32_t add_tiny_scheme(Stack& s, std::uint64_t gen_seed,
                              workload::WorkloadGenerator** out_gen) {
  static thread_local std::unique_ptr<workload::WorkloadGenerator> gen;
  gen = std::make_unique<workload::WorkloadGenerator>(workload::tiny_spec(),
                                                      gen_seed);
  *out_gen = gen.get();
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  return s.sys->add_scheme(gen->scheme(), opt);
}

TEST(Failure, EventToDeadSubscriberIsDroppedSilently) {
  auto s = make_stack(30);
  workload::WorkloadGenerator* gen = nullptr;
  const auto scheme = add_tiny_scheme(s, 3, &gen);
  // Node 5 subscribes to everything, then dies.
  s.sys->subscribe(5, scheme, pubsub::Subscription(gen->scheme().domain()));
  s.sim->run();
  s.chord->fail(5);

  s.sys->publish(9, scheme, gen->make_event());
  s.sim->run();
  s.sys->finalize_events();
  // No delivery, no crash; the event record still exists and is flagged
  // truncated (part of its tree died with the subscriber).
  EXPECT_TRUE(s.sys->deliveries().empty());
  EXPECT_EQ(s.sys->event_metrics().count(), 1u);
  EXPECT_EQ(s.sys->event_metrics().truncated_count(), 1u);
}

TEST(Failure, SuccessorInheritsIdRangeButNotDeliveries) {
  // When a subscriber dies, its id range passes to the successor; the
  // successor must NOT receive the dead node's notifications.
  auto s = make_stack(30, 7);
  workload::WorkloadGenerator* gen = nullptr;
  const auto scheme = add_tiny_scheme(s, 5, &gen);
  s.sys->subscribe(4, scheme, pubsub::Subscription(gen->scheme().domain()));
  s.sim->run();
  s.chord->fail(4);
  // Repair the ring instantly via oracle (the chord tests cover protocol
  // repair; here we isolate the delivery-side check).
  s.chord->oracle_build();

  s.sys->publish(9, scheme, gen->make_event());
  s.sim->run();
  s.sys->finalize_events();
  EXPECT_TRUE(s.sys->deliveries().empty());
}

TEST(Failure, PublisherDiesMidDelivery) {
  auto s = make_stack(40, 9);
  workload::WorkloadGenerator* gen = nullptr;
  const auto scheme = add_tiny_scheme(s, 7, &gen);
  for (net::HostIndex h = 0; h < 40; ++h) {
    s.sys->subscribe(h, scheme,
                     pubsub::Subscription(gen->scheme().domain()));
  }
  s.sim->run();

  s.sys->publish(3, scheme, gen->make_event());
  // Kill the publisher immediately: in-flight messages FROM it still
  // arrive (they left already) but new sends from it are dropped.
  s.chord->fail(3);
  s.sim->run();
  s.sys->finalize_events();
  // The system stays consistent: every recorded delivery is to a live node,
  // and all event trackers were finalized.
  for (const auto& d : s.sys->deliveries()) {
    EXPECT_TRUE(s.net->alive(d.subscriber));
  }
  EXPECT_EQ(s.sys->event_metrics().count(), 1u);
}

TEST(Failure, FinalizeEventsFlushesPartialTrackers) {
  auto s = make_stack(30, 11);
  workload::WorkloadGenerator* gen = nullptr;
  const auto scheme = add_tiny_scheme(s, 9, &gen);
  for (net::HostIndex h = 0; h < 30; ++h) {
    s.sys->subscribe(h, scheme,
                     pubsub::Subscription(gen->scheme().domain()));
  }
  s.sim->run();
  // Kill a third of the network so delivery trees get cut.
  for (net::HostIndex h = 0; h < 30; h += 3) s.chord->fail(h);

  s.sys->publish(1, scheme, gen->make_event());
  s.sim->run();
  // Outstanding counts never hit zero (messages were dropped), so without
  // the flush no record would exist; the record is flagged truncated.
  s.sys->finalize_events();
  EXPECT_EQ(s.sys->event_metrics().count(), 1u);
  EXPECT_EQ(s.sys->event_metrics().truncated_count(), 1u);
  // Flushing twice is harmless.
  s.sys->finalize_events();
  EXPECT_EQ(s.sys->event_metrics().count(), 1u);
}

TEST(Failure, DeliveryContinuesAfterFinalizeDuringChurn) {
  // finalize_events() while messages are still queued must not crash or
  // corrupt later processing (trackers are gone; delivery still proceeds).
  auto s = make_stack(30, 13);
  workload::WorkloadGenerator* gen = nullptr;
  const auto scheme = add_tiny_scheme(s, 11, &gen);
  s.sys->subscribe(8, scheme, pubsub::Subscription(gen->scheme().domain()));
  s.sim->run();

  s.sys->publish(2, scheme, gen->make_event());
  s.sim->run(3);             // a few steps only; messages still in flight
  s.sys->finalize_events();  // force-close the tracker early
  s.sim->run();              // drain the rest
  // The delivery may or may not carry timing (tracker is gone), but it
  // must arrive exactly once and the system must not crash.
  EXPECT_EQ(s.sys->deliveries().size(), 1u);
  EXPECT_EQ(s.sys->deliveries()[0].subscriber, 8u);
}

TEST(Failure, InstallToDeadOwnerIsLost) {
  // If the surrogate node for a subscription's zone is dead and the ring
  // has not repaired, the installation is dropped (paper defers
  // replication to the DHT); the system must not wedge.
  auto s = make_stack(20, 15);
  workload::WorkloadGenerator* gen = nullptr;
  const auto scheme = add_tiny_scheme(s, 13, &gen);
  const auto sub = gen->make_subscription();
  // Find the would-be owner and kill it without repairing.
  const auto& ss = s.sys->scheme_runtime(scheme).subscheme(0);
  const auto key = lph::hash_subscription(ss.zones(), sub.range(),
                                          ss.rotation()).key;
  const auto owner = s.chord->oracle_successor(key);
  s.chord->fail(owner.host);

  s.sys->subscribe((owner.host + 1) % 20, scheme, sub);
  s.sim->run();
  // The subscriber-side count still incremented (it registered locally),
  // but no zone state exists anywhere for the dead owner.
  EXPECT_EQ(s.sys->total_subscriptions(), 1u);
  EXPECT_EQ(s.sys->node(owner.host).zones().size(), 0u);
}

}  // namespace
}  // namespace hypersub
