// Cross-module integration tests: HyperSub running over a protocol-built
// (not oracle-built) ring, delivery under churn, zone-chain structure on
// real nodes, and the paper's qualitative claims at small scale.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "net/topology.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub {
namespace {

struct Stack {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<chord::ChordNet> chord;
  std::unique_ptr<core::HyperSubSystem> sys;
};

Stack make_stack(std::size_t n, std::uint64_t seed = 1,
                 core::HyperSubSystem::Config sc = {}) {
  Stack s;
  net::KingLikeTopology::Params tp;
  tp.hosts = n;
  tp.seed = seed;
  s.topo = std::make_unique<net::KingLikeTopology>(tp);
  s.sim = std::make_unique<sim::Simulator>();
  s.net = std::make_unique<net::Network>(*s.sim, *s.topo);
  chord::ChordNet::Params cp;
  cp.seed = seed;
  s.chord = std::make_unique<chord::ChordNet>(*s.net, cp);
  s.sys = std::make_unique<core::HyperSubSystem>(*s.chord, sc);
  return s;
}

core::HyperSubSystem::Config oracle_cfg(
    core::HyperSubSystem::Config sc = {}) {
  sc.bootstrap = core::BootstrapMode::kOracle;
  return sc;
}

// Delivery works over a ring assembled purely by the join protocol.
TEST(Integration, DeliveryOverProtocolBuiltRing) {
  auto s = make_stack(24, 3);
  // Host 0 bootstraps alone; everyone else joins through it.
  s.chord->node(0).set_predecessor(s.chord->node(0).self());
  s.chord->node(0).set_successor(s.chord->node(0).self());
  s.chord->start_maintenance();
  for (net::HostIndex h = 1; h < 24; ++h) {
    s.chord->join(h, 0);
    s.sim->run_until(s.sim->now() + 1500.0);
  }
  // Let stabilization converge.
  s.sim->run_until(s.sim->now() + 60000.0);

  // Ring must be consistent with ground truth.
  const auto ring = s.chord->oracle_ring();
  for (std::size_t i = 0; i < ring.size(); ++i) {
    ASSERT_EQ(s.chord->node(ring[i].host).successor().id,
              ring[(i + 1) % ring.size()].id);
  }

  workload::WorkloadGenerator gen(workload::tiny_spec(), 5);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);

  std::vector<std::pair<net::HostIndex, pubsub::Subscription>> subs;
  Rng rng(7);
  for (int i = 0; i < 72; ++i) {
    const auto h = net::HostIndex(rng.index(24));
    const auto sub = gen.make_subscription();
    s.sys->subscribe(h, scheme, sub);
    subs.emplace_back(h, sub);
  }
  // Drain installs but keep maintenance timers alive: advance far enough.
  s.sim->run_until(s.sim->now() + 30000.0);

  std::vector<pubsub::Event> events;
  std::vector<std::uint64_t> seqs;
  for (int i = 0; i < 40; ++i) {
    auto e = gen.make_event();
    seqs.push_back(s.sys->publish(net::HostIndex(rng.index(24)), scheme, e));
    events.push_back(e);
  }
  s.sim->run_until(s.sim->now() + 30000.0);
  s.sys->finalize_events();

  std::map<std::uint64_t, std::multiset<std::size_t>> actual;
  for (const auto& d : s.sys->deliveries()) {
    actual[d.event_seq].insert(d.subscriber);
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    std::multiset<std::size_t> expected;
    for (const auto& [h, sub] : subs) {
      if (sub.matches(events[i].point)) expected.insert(h);
    }
    EXPECT_EQ(actual[seqs[i]], expected) << "event " << i;
  }
}

// Surrogate-subscription chains: the piece stored at an event's leaf zone
// leads, zone by zone, to every ancestor holding a covering subscription.
TEST(Integration, ZoneChainsReachCoveringSubscriptions) {
  auto s = make_stack(30, 9, oracle_cfg());
  workload::WorkloadGenerator gen(workload::tiny_spec(), 11);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  opt.rotate = false;
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);

  // A wide subscription living in a shallow zone.
  const pubsub::Predicate p{0, {20.0, 80.0}};
  const auto sub =
      pubsub::Subscription::from_predicates(gen.scheme(), std::span(&p, 1));
  s.sys->subscribe(3, scheme, sub);
  s.sim->run();

  // Its covering zone is shallow.
  const auto& rt = s.sys->scheme_runtime(scheme);
  const auto& ss = rt.subscheme(0);
  const auto lr = lph::hash_subscription(ss.zones(), sub.range(), 0);
  EXPECT_LT(lr.zone.level, 4);

  // An event inside the subscription: its leaf zone's surrogate node must
  // hold a piece chain (parent pointer present at the leaf) — either as a
  // materialized zone or as a member of a path-compressed chain record.
  pubsub::Event e{0, {50.0, 5.0}};
  const auto le = lph::hash_event(ss.zones(), e.point, 0);
  const auto owner = s.chord->oracle_successor(le.key);
  const auto* zs = s.sys->node(owner.host).find_zone_by_key(le.key);
  bool has_piece = zs != nullptr && zs->has_parent_piece();
  s.sys->node(owner.host).chains().for_each_at_key(
      le.key, [&](std::uint32_t, const core::CompressedChain&) {
        has_piece = true;  // chain members carry a derived piece by definition
      });
  EXPECT_TRUE(has_piece) << "leaf zone has no state: chain is broken";

  // And the delivery actually happens.
  s.sys->publish(7, scheme, e);
  s.sim->run();
  s.sys->finalize_events();
  ASSERT_EQ(s.sys->deliveries().size(), 1u);
  EXPECT_EQ(s.sys->deliveries()[0].subscriber, 3u);
}

// Node failures during the event phase: deliveries to live subscribers
// keep flowing once the ring repairs.
TEST(Integration, DeliveryAfterFailuresAndRepair) {
  auto s = make_stack(40, 13, oracle_cfg());
  s.chord->start_maintenance();
  workload::WorkloadGenerator gen(workload::tiny_spec(), 15);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);

  // Every node subscribes to everything: deliveries are easy to count.
  for (net::HostIndex h = 0; h < 40; ++h) {
    s.sys->subscribe(h, scheme, pubsub::Subscription(gen.scheme().domain()));
  }
  s.sim->run_until(s.sim->now() + 20000.0);

  // Kill three nodes and let the ring repair.
  s.chord->fail(8);
  s.chord->fail(21);
  s.chord->fail(33);
  s.sim->run_until(s.sim->now() + 90000.0);

  const auto before = s.sys->deliveries().size();
  s.sys->publish(0, scheme, gen.make_event());
  s.sim->run_until(s.sim->now() + 60000.0);
  s.sys->finalize_events();
  const std::size_t got = s.sys->deliveries().size() - before;

  // All 37 live subscribers should be reachable. Subscriptions that were
  // STORED on the dead nodes are lost (the paper defers replication to the
  // DHT layer), so allow a small shortfall — but the bulk must arrive.
  EXPECT_GE(got, 30u);
  EXPECT_LE(got, 37u);
  for (const auto& d : s.sys->deliveries()) {
    EXPECT_NE(d.subscriber, 8u);
    EXPECT_NE(d.subscriber, 21u);
    EXPECT_NE(d.subscriber, 33u);
  }
}

// Multi-scheme rotation: the same zone structure of two schemes must land
// on different nodes when rotation is on.
TEST(Integration, RotationSpreadsSchemesAcrossNodes) {
  auto s = make_stack(50, 17, oracle_cfg());
  auto spec_a = workload::tiny_spec();
  spec_a.scheme_name = "alpha";
  auto spec_b = workload::tiny_spec();
  spec_b.scheme_name = "beta";
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  opt.rotate = true;

  const auto& zs = lph::ZoneSystem(workload::make_scheme(spec_a).domain(),
                                   {1, 20});
  const auto root_key_a =
      lph::zone_key(zs, zs.root(), lph::rotation_offset("alpha#0"));
  const auto root_key_b =
      lph::zone_key(zs, zs.root(), lph::rotation_offset("beta#0"));
  EXPECT_NE(s.chord->oracle_successor(root_key_a).id,
            s.chord->oracle_successor(root_key_b).id)
      << "rotation failed to separate the schemes' root zones";
}

// Ancestor-probing mode must agree with the default mechanism event by
// event (same matched sets; different cost profile).
TEST(Integration, AncestorProbingAgreesWithPieces) {
  std::vector<std::size_t> matched_default, matched_probing;
  for (const bool probing : {false, true}) {
    core::HyperSubSystem::Config sc;
    sc.ancestor_probing = probing;
    auto s = make_stack(40, 21, oracle_cfg(sc));
    workload::WorkloadGenerator gen(workload::table1_spec(), 23);
    core::SchemeOptions opt;
    opt.zone_cfg = {1, 20};
    const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
    Rng rng(25);
    for (int i = 0; i < 120; ++i) {
      s.sys->subscribe(net::HostIndex(rng.index(40)), scheme,
                       gen.make_subscription());
    }
    s.sim->run();
    for (int i = 0; i < 60; ++i) {
      s.sys->publish(net::HostIndex(rng.index(40)), scheme, gen.make_event());
    }
    s.sim->run();
    s.sys->finalize_events();
    // Records finalize in delivery-completion order, which differs between
    // the two mechanisms; compare by event sequence number.
    std::map<std::uint64_t, std::size_t> by_seq;
    for (const auto& r : s.sys->event_metrics().records()) {
      by_seq[r.seq] = r.matched;
    }
    auto& out = probing ? matched_probing : matched_default;
    for (const auto& [seq, matched] : by_seq) out.push_back(matched);
  }
  EXPECT_EQ(matched_default, matched_probing);
}

}  // namespace
}  // namespace hypersub
