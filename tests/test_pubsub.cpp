// Pub/sub data model tests: schemes, subscriptions, events, matching.

#include <gtest/gtest.h>

#include "pubsub/event.hpp"
#include "pubsub/strings.hpp"
#include "pubsub/scheme.hpp"
#include "pubsub/subscription.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub::pubsub {
namespace {

Scheme make_scheme2() {
  return Scheme("s", {{"price", {0, 100}}, {"qty", {0, 10}}});
}

TEST(Scheme, BasicAccessors) {
  const Scheme s = make_scheme2();
  EXPECT_EQ(s.name(), "s");
  EXPECT_EQ(s.arity(), 2u);
  EXPECT_EQ(s.attribute(0).name, "price");
  EXPECT_EQ(s.index_of("qty"), 1u);
  EXPECT_EQ(s.index_of("nope"), 2u);
  EXPECT_EQ(s.domain(), HyperRect({{0, 100}, {0, 10}}));
}

TEST(Scheme, ContainsChecksArityAndBounds) {
  const Scheme s = make_scheme2();
  EXPECT_TRUE(s.contains(Point{50, 5}));
  EXPECT_FALSE(s.contains(Point{50}));
  EXPECT_FALSE(s.contains(Point{101, 5}));
}

TEST(Subscription, FromPredicatesFillsUnspecified) {
  const Scheme s = make_scheme2();
  const Predicate p{0, {10, 20}};
  const auto sub = Subscription::from_predicates(s, std::span(&p, 1));
  EXPECT_EQ(sub.range(), HyperRect({{10, 20}, {0, 10}}));
  EXPECT_EQ(sub.constrained_count(s), 1u);
}

TEST(Subscription, PredicatesClampToDomain) {
  const Scheme s = make_scheme2();
  const Predicate p{0, {-5, 200}};
  const auto sub = Subscription::from_predicates(s, std::span(&p, 1));
  EXPECT_EQ(sub.range().dim(0), (Interval{0, 100}));
}

TEST(Subscription, MultiplePredicatesOneAttributeIntersect) {
  const Scheme s = make_scheme2();
  const Predicate ps[] = {{0, {10, 50}}, {0, {30, 90}}};
  const auto sub = Subscription::from_predicates(s, ps);
  EXPECT_EQ(sub.range().dim(0), (Interval{30, 50}));
}

TEST(Subscription, EqualityPredicateIsDegenerate) {
  const Scheme s = make_scheme2();
  const Predicate p{1, {7, 7}};
  const auto sub = Subscription::from_predicates(s, std::span(&p, 1));
  EXPECT_TRUE(sub.matches(Point{3, 7}));
  EXPECT_FALSE(sub.matches(Point{3, 7.01}));
}

TEST(Subscription, MatchesIsConjunction) {
  const Scheme s = make_scheme2();
  const Predicate ps[] = {{0, {10, 20}}, {1, {2, 4}}};
  const auto sub = Subscription::from_predicates(s, ps);
  EXPECT_TRUE(sub.matches(Point{15, 3}));
  EXPECT_FALSE(sub.matches(Point{15, 5}));
  EXPECT_FALSE(sub.matches(Point{25, 3}));
  // Closed boundaries.
  EXPECT_TRUE(sub.matches(Point{10, 2}));
  EXPECT_TRUE(sub.matches(Point{20, 4}));
}

TEST(Event, ValidationAndToString) {
  const Scheme s = make_scheme2();
  Event e;
  e.seq = 9;
  e.point = {50, 5};
  EXPECT_TRUE(valid_event(s, e));
  e.point = {50, 11};
  EXPECT_FALSE(valid_event(s, e));
  e.point = {50, 5};
  EXPECT_EQ(e.to_string(), "event#9(50,5)");
}

// ---------------------------------------------------------------------------
// workload generators
// ---------------------------------------------------------------------------

TEST(Workload, Table1SpecShape) {
  const auto spec = workload::table1_spec();
  EXPECT_EQ(spec.dims.size(), 4u);
  const auto scheme = workload::make_scheme(spec);
  EXPECT_EQ(scheme.arity(), 4u);
  EXPECT_FALSE(workload::render_table1(spec).empty());
}

TEST(Workload, EventsAreInDomain) {
  workload::WorkloadGenerator gen(workload::table1_spec(), 11);
  for (int i = 0; i < 2000; ++i) {
    const auto e = gen.make_event();
    EXPECT_TRUE(gen.scheme().contains(e.point));
  }
}

TEST(Workload, SubscriptionsAreInDomainAndNonEmpty) {
  workload::WorkloadGenerator gen(workload::table1_spec(), 12);
  for (int i = 0; i < 2000; ++i) {
    const auto sub = gen.make_subscription();
    EXPECT_TRUE(gen.scheme().domain().covers(sub.range()));
    for (std::size_t d = 0; d < 4; ++d) {
      EXPECT_LE(sub.range().dim(d).lo, sub.range().dim(d).hi);
    }
  }
}

TEST(Workload, PartialSubscriptionLeavesOthersFull) {
  workload::WorkloadGenerator gen(workload::table1_spec(), 13);
  const auto sub = gen.make_partial_subscription({1});
  EXPECT_EQ(sub.range().dim(0), gen.scheme().attribute(0).domain);
  EXPECT_EQ(sub.range().dim(2), gen.scheme().attribute(2).domain);
  EXPECT_NE(sub.range().dim(1), gen.scheme().attribute(1).domain);
}

TEST(Workload, HotspotConcentratesEventMass) {
  // Most event values on dim 0 should land near the hotspot position.
  auto spec = workload::table1_spec();
  workload::WorkloadGenerator gen(spec, 14);
  const auto& d0 = spec.dims[0];
  int near = 0, total = 4000;
  for (int i = 0; i < total; ++i) {
    const auto e = gen.make_event();
    const double pos = (e.point[0] - d0.min) / (d0.max - d0.min);
    double dist = std::abs(pos - d0.data_hotspot);
    dist = std::min(dist, 1.0 - dist);  // circular distance
    if (dist < 0.25) ++near;
  }
  // Zipf with skew 0.95 over 1024 buckets puts well over half the mass in
  // the quarter of the domain around the hotspot.
  EXPECT_GT(near, total / 2);
}

TEST(Workload, SizesBoundedByHotspotFraction) {
  auto spec = workload::table1_spec();
  workload::WorkloadGenerator gen(spec, 15);
  for (int i = 0; i < 2000; ++i) {
    const auto sub = gen.make_subscription();
    for (std::size_t d = 0; d < spec.dims.size(); ++d) {
      const double frac = sub.range().dim(d).length() /
                          (spec.dims[d].max - spec.dims[d].min);
      EXPECT_LE(frac, spec.dims[d].size_hotspot + 1e-12);
    }
  }
}

TEST(Workload, DeterministicPerSeed) {
  workload::WorkloadGenerator a(workload::table1_spec(), 7);
  workload::WorkloadGenerator b(workload::table1_spec(), 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.make_event().point, b.make_event().point);
  }
}

}  // namespace
}  // namespace hypersub::pubsub

// ---------------------------------------------------------------------------
// string predicates (paper §3.1: prefix/suffix -> numeric ranges)
// ---------------------------------------------------------------------------

namespace hypersub::pubsub {
namespace {

TEST(Strings, EmbeddingPreservesLexOrder) {
  const char* words[] = {"", "a", "aa", "ab", "abc", "b", "ba",
                         "zebra", "zoo", "zz", "apple", "applesauce"};
  for (const char* x : words) {
    for (const char* y : words) {
      const bool lex = std::string_view(x) < std::string_view(y);
      if (lex) {
        EXPECT_LE(string_to_unit(x), string_to_unit(y)) << x << " vs " << y;
      }
    }
  }
  EXPECT_LT(string_to_unit("apple"), string_to_unit("banana"));
}

TEST(Strings, PrefixRangeContainsExactlyPrefixedStrings) {
  const Interval r = prefix_range("ab");
  EXPECT_TRUE(r.contains(string_to_unit("ab")));
  EXPECT_TRUE(r.contains(string_to_unit("abc")));
  EXPECT_TRUE(r.contains(string_to_unit("abzzz")));
  EXPECT_FALSE(r.contains(string_to_unit("aa")));
  EXPECT_FALSE(r.contains(string_to_unit("b")));
  // "ac" maps exactly to the upper bound, which a half-open reading would
  // exclude; accept either since LPH works on closed intervals and the
  // final exact match happens against the original predicate.
  EXPECT_FALSE(r.contains(string_to_unit("ad")));
}

TEST(Strings, EmptyPrefixCoversWholeDomain) {
  const Interval r = prefix_range("");
  EXPECT_DOUBLE_EQ(r.lo, 0.0);
  EXPECT_DOUBLE_EQ(r.hi, 1.0);
}

TEST(Strings, ExactRangeIsDegenerate) {
  const Interval r = exact_range("quote");
  EXPECT_DOUBLE_EQ(r.lo, r.hi);
  EXPECT_TRUE(r.contains(string_to_unit("quote")));
}

TEST(Strings, SuffixViaReversedAttribute) {
  // Suffix "*ing" on the original attribute == prefix "gni*" on the
  // reversed shadow attribute.
  EXPECT_EQ(reversed("running"), "gninnur");
  const Interval r = prefix_range(reversed("ing"));
  EXPECT_TRUE(r.contains(string_to_unit(reversed("running"))));
  EXPECT_TRUE(r.contains(string_to_unit(reversed("sing"))));
  EXPECT_FALSE(r.contains(string_to_unit(reversed("runs"))));
}

TEST(Strings, UsableAsSchemeAttribute) {
  // End-to-end: a string-typed attribute modeled on [0,1); a prefix
  // subscription matches exactly the prefixed titles.
  const Scheme s("books", {{"title", {0.0, 1.0}}, {"price", {0.0, 100.0}}});
  const Predicate preds[] = {{0, prefix_range("har")}, {1, {0.0, 30.0}}};
  const auto sub = Subscription::from_predicates(s, preds);
  EXPECT_TRUE(sub.matches(Point{string_to_unit("harry potter"), 12.0}));
  EXPECT_TRUE(sub.matches(Point{string_to_unit("hardware"), 29.0}));
  EXPECT_FALSE(sub.matches(Point{string_to_unit("hardware"), 31.0}));
  EXPECT_FALSE(sub.matches(Point{string_to_unit("iliad"), 12.0}));
}

}  // namespace
}  // namespace hypersub::pubsub
