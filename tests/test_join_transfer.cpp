// Live join/leave state-transfer tests: a protocol join must hand the
// joiner exactly the zone state an oracle build would have placed there
// (snapshot + write-behind replay), a graceful leave must push everything
// to the successor before departing, and the whole-run checkpoint must be
// transparent — a run restored mid-flight finishes byte-identical to the
// uninterrupted run, at any worker-thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "net/topology.hpp"
#include "runner/checkpoint.hpp"
#include "trace/tracer.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub {
namespace {

struct StackOpts {
  std::size_t hosts = 32;
  std::uint64_t seed = 1;
  unsigned threads = 1;
  double lookahead = 0.0;
  std::size_t replicas = 0;
  bool reliable = false;
  /// Host killed before the overlay is built (starts outside the ring).
  net::HostIndex pre_kill = overlay::Peer::kInvalidHost;
  core::BootstrapMode bootstrap = core::BootstrapMode::kOracle;
};

struct Stack {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<chord::ChordNet> chord;
  std::unique_ptr<core::HyperSubSystem> sys;
  std::unique_ptr<workload::WorkloadGenerator> gen;
  std::uint32_t scheme = 0;
};

Stack make_stack(const StackOpts& o) {
  Stack s;
  net::KingLikeTopology::Params tp;
  tp.hosts = o.hosts;
  tp.seed = o.seed;
  s.topo = std::make_unique<net::KingLikeTopology>(tp);
  s.sim = std::make_unique<sim::Simulator>();
  s.sim->set_threads(o.threads);
  s.sim->set_lookahead(o.lookahead);
  s.net = std::make_unique<net::Network>(*s.sim, *s.topo);
  if (o.pre_kill != overlay::Peer::kInvalidHost) s.net->kill(o.pre_kill);
  chord::ChordNet::Params cp;
  cp.seed = o.seed;
  cp.reliable_routing = o.reliable;
  s.chord = std::make_unique<chord::ChordNet>(*s.net, cp);
  core::HyperSubSystem::Config sc;
  sc.bootstrap = o.bootstrap;
  sc.replicas = o.replicas;
  sc.reliable_delivery = o.reliable;
  s.sys = std::make_unique<core::HyperSubSystem>(*s.chord, sc);
  s.gen = std::make_unique<workload::WorkloadGenerator>(workload::tiny_spec(),
                                                        o.seed + 100);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  s.scheme = s.sys->add_scheme(s.gen->scheme(), opt);
  return s;
}

/// Drive a protocol join to its commit: maintenance converges the ring
/// splice, the handover ticks move the state, then everything drains.
void settle_join(Stack& s, double window_ms = 30000.0) {
  s.sim->run_until(s.sim->now() + window_ms);
  s.chord->stop_maintenance();
  s.sim->run();
  EXPECT_FALSE(s.sys->transfer_active());
}

/// Per-host fingerprints of every subscription-bearing primary zone.
/// Replica copies and empty piece skeletons are excluded: replica chains
/// legitimately differ after a live handover (the last heir of the old
/// chain keeps a stale copy), and skeletons re-materialize from piece
/// propagation.
using ZoneKey =
    std::tuple<net::HostIndex, std::uint32_t, std::uint32_t, int,
               std::uint64_t>;
std::map<ZoneKey, std::uint64_t> zone_fingerprints(const Stack& s) {
  std::map<ZoneKey, std::uint64_t> out;
  for (net::HostIndex h = 0; h < s.topo->size(); ++h) {
    if (!s.net->alive(h)) continue;
    for (const auto& [addr, z] : s.sys->node(h).zones()) {
      if (z.subscription_count() == 0 && z.buckets().empty()) continue;
      out[{h, addr.scheme, addr.subscheme, addr.zone.level,
           std::uint64_t(addr.zone.code)}] = z.fingerprint();
    }
  }
  return out;
}

/// The same map with the host erased: "which zones exist where-ever, with
/// what content" — invariant across a graceful leave (content moves, is
/// not lost).
std::map<std::tuple<std::uint32_t, std::uint32_t, int, std::uint64_t>,
         std::uint64_t>
placed_anywhere(const std::map<ZoneKey, std::uint64_t>& fps) {
  std::map<std::tuple<std::uint32_t, std::uint32_t, int, std::uint64_t>,
           std::uint64_t>
      out;
  for (const auto& [k, fp] : fps) {
    out[{std::get<1>(k), std::get<2>(k), std::get<3>(k), std::get<4>(k)}] = fp;
  }
  return out;
}

using DeliveryRow = std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>;
std::vector<DeliveryRow> delivery_set(const Stack& s) {
  std::vector<DeliveryRow> out;
  for (const auto& d : s.sys->deliveries()) {
    out.emplace_back(d.event_seq, std::uint64_t(d.subscriber), d.iid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- snapshot/replay equivalence -----------------------------------------

TEST(JoinTransfer, ProtocolJoinMatchesOracleBuild) {
  constexpr net::HostIndex kJoiner = 13;
  // Stack A: everyone (including the joiner-to-be) in the ring from the
  // start, oracle-built. Stack B: identical, except kJoiner starts dead
  // and enters later through the live join protocol.
  Stack a = make_stack({});
  Stack b = make_stack({.pre_kill = kJoiner});

  // Identical install script in both stacks, from hosts != kJoiner.
  Rng rng(19);
  for (int i = 0; i < 120; ++i) {
    net::HostIndex h = net::HostIndex(rng.index(32));
    if (h == kJoiner) h = (h + 1) % 32;
    const auto sub_a = a.gen->make_subscription();
    const auto sub_b = b.gen->make_subscription();
    a.sys->subscribe(h, a.scheme, sub_a);
    b.sys->subscribe(h, b.scheme, sub_b);
  }
  a.sim->run();
  b.sim->run();

  // Live entry: splice + snapshot handshake + commit.
  b.net->revive(kJoiner);
  b.chord->start_maintenance();
  b.sys->join_node(kJoiner, 0);
  settle_join(b);
  EXPECT_EQ(b.sys->join_stats().joins_committed, 1u);
  EXPECT_GT(b.sys->join_stats().zones_transferred, 0u);
  EXPECT_GT(b.sys->join_stats().transfer_bytes, 0u);
  EXPECT_TRUE(b.sys->check_zone_invariants());

  // Same zones, on the same hosts, with the same contents.
  EXPECT_EQ(zone_fingerprints(a), zone_fingerprints(b));

  // And the same delivery behavior: an identical event feed notifies the
  // identical (event, subscriber, subscription) set.
  for (int i = 0; i < 12; ++i) {
    const net::HostIndex pub = net::HostIndex(rng.index(32));
    const auto ev_a = a.gen->make_event();
    const auto ev_b = b.gen->make_event();
    a.sys->publish(pub, a.scheme, ev_a);
    b.sys->publish(pub, b.scheme, ev_b);
  }
  a.sim->run();
  b.sim->run();
  a.sys->finalize_events();
  b.sys->finalize_events();
  EXPECT_EQ(delivery_set(a), delivery_set(b));
}

TEST(JoinTransfer, UpdatesDuringTransferAreReplayed) {
  // Host 9 owns a wide arc under this seed, so a dense install feed is
  // guaranteed to land writes inside its transfer window.
  constexpr net::HostIndex kJoiner = 9;
  Stack a = make_stack({});
  Stack b = make_stack({.pre_kill = kJoiner});

  Rng rng(23);
  for (int i = 0; i < 80; ++i) {
    net::HostIndex h = net::HostIndex(rng.index(32));
    if (h == kJoiner) h = (h + 1) % 32;
    a.sys->subscribe(h, a.scheme, a.gen->make_subscription());
    b.sys->subscribe(h, b.scheme, b.gen->make_subscription());
  }
  a.sim->run();
  b.sim->run();

  // Start the join, then keep installing while the handshake is in
  // flight: installs spread across the splice + transfer window hit the
  // old owner's write-behind queue or the warming joiner's deferral path
  // and must all land exactly once.
  b.net->revive(kJoiner);
  b.chord->start_maintenance();
  b.sys->join_node(kJoiner, 0);
  // The handshake spans a few hundred milliseconds (splice + snapshot +
  // commit round trips); a 5 ms install cadence guarantees plenty of
  // installs land inside it.
  for (int i = 0; i < 600; ++i) {
    net::HostIndex h = net::HostIndex(rng.index(32));
    if (h == kJoiner) h = (h + 1) % 32;
    const double at = 5.0 * (i + 1);
    const auto sub_a = a.gen->make_subscription();
    const auto sub_b = b.gen->make_subscription();
    a.sim->schedule(at, [&a, h, sub_a] { a.sys->subscribe(h, a.scheme, sub_a); });
    b.sim->schedule(at, [&b, h, sub_b] { b.sys->subscribe(h, b.scheme, sub_b); });
  }
  a.sim->run();
  settle_join(b);
  EXPECT_EQ(b.sys->join_stats().joins_committed, 1u);
  // The window was actually exercised: some installs arrived mid-transfer.
  EXPECT_GT(b.sys->join_stats().queued_ops_replayed +
                b.sys->join_stats().warm_ops_replayed,
            0u);
  EXPECT_TRUE(b.sys->check_zone_invariants());
  EXPECT_EQ(zone_fingerprints(a), zone_fingerprints(b));

  for (int i = 0; i < 12; ++i) {
    const net::HostIndex pub = net::HostIndex(rng.index(32));
    const auto ev_a = a.gen->make_event();
    const auto ev_b = b.gen->make_event();
    a.sys->publish(pub, a.scheme, ev_a);
    b.sys->publish(pub, b.scheme, ev_b);
  }
  a.sim->run();
  b.sim->run();
  a.sys->finalize_events();
  b.sys->finalize_events();
  EXPECT_EQ(delivery_set(a), delivery_set(b));
}

// --- graceful leave -------------------------------------------------------

TEST(JoinTransfer, LeaveMovesStateThenRejoinRestoresIt) {
  constexpr net::HostIndex kNode = 9;
  Stack s = make_stack({.seed = 5});
  Rng rng(29);
  for (int i = 0; i < 120; ++i) {
    s.sys->subscribe(net::HostIndex(rng.index(32)), s.scheme,
                     s.gen->make_subscription());
  }
  s.sim->run();
  const auto fp0 = zone_fingerprints(s);
  ASSERT_FALSE(fp0.empty());

  // Graceful departure: every zone the leaver hosted survives, re-homed at
  // its successor — nothing is lost, only relocated.
  s.sys->leave_node(kNode);
  s.sim->run();
  EXPECT_FALSE(s.net->alive(kNode));
  EXPECT_EQ(s.sys->join_stats().leaves_completed, 1u);
  EXPECT_TRUE(s.sys->check_zone_invariants());
  EXPECT_EQ(placed_anywhere(fp0), placed_anywhere(zone_fingerprints(s)));

  // Rejoin through the live protocol: the zones flow back and the layout
  // converges to exactly the pre-leave placement.
  s.chord->start_maintenance();
  s.sys->join_node(kNode, 0);
  settle_join(s);
  EXPECT_EQ(s.sys->join_stats().joins_committed, 1u);
  EXPECT_TRUE(s.sys->check_zone_invariants());
  EXPECT_EQ(fp0, zone_fingerprints(s));
}

// --- whole-run checkpoint/restore ----------------------------------------

/// One scripted run, optionally interrupted at event kCut by a checkpoint:
/// the interrupted variant serializes everything, rebuilds a fresh stack
/// (BootstrapMode::kNone — the blob carries the ring), restores, and
/// finishes the identical schedule. Returns the final checkpoint blob.
std::vector<std::uint8_t> scripted_run(unsigned threads, bool interrupt) {
  constexpr std::size_t kEvents = 24;
  constexpr std::size_t kCut = 12;
  const StackOpts base{.seed = 7, .threads = threads, .lookahead = 5.0};

  Stack s = make_stack(base);
  trace::Tracer tracer;
  s.sys->set_tracer(&tracer);

  // Pre-draw the whole script so generator state never depends on which
  // stack consumed it.
  Rng rng(31);
  std::vector<std::pair<net::HostIndex, pubsub::Subscription>> subs;
  for (int i = 0; i < 80; ++i) {
    subs.emplace_back(net::HostIndex(rng.index(32)), s.gen->make_subscription());
  }
  std::vector<std::pair<net::HostIndex, pubsub::Event>> events;
  for (std::size_t i = 0; i < kEvents; ++i) {
    events.emplace_back(net::HostIndex(rng.index(32)), s.gen->make_event());
  }

  for (const auto& [h, sub] : subs) s.sys->subscribe(h, s.scheme, sub);
  s.sim->run();

  // Events on a fixed absolute timeline, far enough apart that each tree
  // drains before the next publish — the cut lands at quiescence.
  const auto schedule = [](Stack& st, const auto& evs, std::size_t from,
                           std::size_t to) {
    for (std::size_t i = from; i < to; ++i) {
      const auto& [pub, ev] = evs[i];
      st.sim->schedule_at(20000.0 + 5000.0 * double(i),
                          [&st, pub, ev] { st.sys->publish(pub, st.scheme, ev); });
    }
  };

  if (!interrupt) {
    schedule(s, events, 0, kEvents);
    s.sim->run();
    s.sys->finalize_events();
    return runner::checkpoint(*s.sys, &tracer);
  }

  schedule(s, events, 0, kCut);
  s.sim->run();
  s.sys->finalize_events();
  const auto mid = runner::checkpoint(*s.sys, &tracer);

  // Fresh process: same construction-time config, no oracle build (the
  // blob carries the ring), then resume the identical schedule.
  StackOpts ropts = base;
  ropts.bootstrap = core::BootstrapMode::kNone;
  Stack r = make_stack(ropts);
  trace::Tracer rtracer;
  runner::restore(*r.sys, mid, &rtracer);
  EXPECT_EQ(r.sim->now(), s.sim->now());
  schedule(r, events, kCut, kEvents);
  r.sim->run();
  r.sys->finalize_events();
  return runner::checkpoint(*r.sys, &rtracer);
}

TEST(JoinTransfer, CheckpointRestoreIsByteIdentical) {
  std::vector<std::uint8_t> reference;
  for (const unsigned threads : {1u, 2u, 4u}) {
    const auto uninterrupted = scripted_run(threads, /*interrupt=*/false);
    const auto resumed = scripted_run(threads, /*interrupt=*/true);
    ASSERT_FALSE(uninterrupted.empty());
    // A checkpointed-and-restored run is indistinguishable from one that
    // never stopped...
    EXPECT_EQ(uninterrupted, resumed) << "threads=" << threads;
    // ...and the parallel engine keeps its byte-identity contract through
    // the checkpoint path too.
    if (reference.empty()) {
      reference = uninterrupted;
    } else {
      EXPECT_EQ(reference, uninterrupted) << "threads=" << threads;
    }
  }
}

// --- delivery through churn ----------------------------------------------

TEST(JoinTransfer, ChurnWithProtocolJoinsKeepsDeliveryNearBaseline) {
  const StackOpts opts{.hosts = 40, .seed = 11, .replicas = 2,
                       .reliable = true};
  Stack base = make_stack(opts);
  Stack churn = make_stack(opts);

  Rng rng(37);
  std::vector<std::pair<net::HostIndex, pubsub::Subscription>> subs;
  for (int i = 0; i < 120; ++i) {
    subs.emplace_back(net::HostIndex(rng.index(40)),
                      base.gen->make_subscription());
  }
  std::vector<std::pair<net::HostIndex, pubsub::Event>> events;
  for (int i = 0; i < 40; ++i) {
    net::HostIndex pub = net::HostIndex(rng.index(40));
    if (pub == 7) pub = 8;  // the churned node never publishes
    events.emplace_back(pub, base.gen->make_event());
  }
  for (Stack* s : {&base, &churn}) {
    for (const auto& [h, sub] : subs) s->sys->subscribe(h, s->scheme, sub);
    s->sim->run();
  }

  const auto feed = [&](Stack& s, std::size_t from, std::size_t to) {
    for (std::size_t i = from; i < to; ++i) {
      s.sys->publish(events[i].first, s.scheme, events[i].second);
    }
  };

  // Baseline: static membership.
  feed(base, 0, 40);
  base.sim->run();
  base.sys->finalize_events();

  // Churned run: a graceful leave with events landing mid-transfer, then a
  // protocol rejoin with events landing mid-warmup.
  feed(churn, 0, 10);
  churn.sim->run();
  churn.sys->leave_node(7);
  feed(churn, 10, 15);  // in flight while the leave handover runs
  churn.sim->run();
  EXPECT_EQ(churn.sys->join_stats().leaves_completed, 1u);
  churn.chord->start_maintenance();
  churn.sys->join_node(7, 0);
  feed(churn, 15, 20);  // in flight while the joiner warms
  settle_join(churn);
  EXPECT_EQ(churn.sys->join_stats().joins_committed, 1u);
  EXPECT_GT(churn.sys->join_stats().zones_transferred, 0u);
  feed(churn, 20, 40);
  churn.sim->run();
  churn.sys->finalize_events();
  EXPECT_TRUE(churn.sys->check_zone_invariants());

  // State transfer keeps the subscription store intact, so only
  // deliveries addressed to the node while it was out of the ring can be
  // lost — a sliver of the feed.
  const double got = double(churn.sys->deliveries().size());
  const double want = double(base.sys->deliveries().size());
  ASSERT_GT(want, 0.0);
  EXPECT_GE(got, 0.9 * want);
}

}  // namespace
}  // namespace hypersub
