// Unit tests for topologies and the message fabric.

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/topology.hpp"

namespace hypersub::net {
namespace {

MatrixTopology make_triangle() {
  // One-way latencies of a 3-host triangle.
  return MatrixTopology({{0, 5, 10},
                         {5, 0, 20},
                         {10, 20, 0}});
}

TEST(MatrixTopology, LatencyAndRtt) {
  const auto t = make_triangle();
  EXPECT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.latency(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(t.rtt(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(t.latency(2, 2), 0.0);
}

TEST(MatrixTopology, MeanRttExactForSmall) {
  const auto t = make_triangle();
  // pairs: (0,1)=10, (0,2)=20, (1,2)=40 -> mean 70/3
  EXPECT_NEAR(t.mean_rtt(), 70.0 / 3.0, 1e-9);
}

TEST(KingLikeTopology, CalibratesToTargetMeanRtt) {
  KingLikeTopology::Params p;
  p.hosts = 400;
  p.target_mean_rtt_ms = 180.0;
  KingLikeTopology t(p);
  EXPECT_NEAR(t.mean_rtt(20000, 9), 180.0, 18.0);  // within 10%
}

TEST(KingLikeTopology, SymmetricZeroDiagonalPositive) {
  KingLikeTopology::Params p;
  p.hosts = 50;
  KingLikeTopology t(p);
  for (HostIndex a = 0; a < 50; ++a) {
    EXPECT_DOUBLE_EQ(t.latency(a, a), 0.0);
    for (HostIndex b = a + 1; b < 50; ++b) {
      EXPECT_DOUBLE_EQ(t.latency(a, b), t.latency(b, a));
      EXPECT_GT(t.latency(a, b), 0.0);
    }
  }
}

TEST(KingLikeTopology, DeterministicPerSeed) {
  KingLikeTopology::Params p;
  p.hosts = 30;
  p.seed = 5;
  KingLikeTopology a(p), b(p);
  p.seed = 6;
  KingLikeTopology c(p);
  EXPECT_DOUBLE_EQ(a.latency(3, 17), b.latency(3, 17));
  EXPECT_NE(a.latency(3, 17), c.latency(3, 17));
}

class KingSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KingSizeTest, MeanStaysNearTargetAcrossSizes) {
  KingLikeTopology::Params p;
  p.hosts = GetParam();
  p.target_mean_rtt_ms = 180.0;
  p.seed = 11;
  KingLikeTopology t(p);
  EXPECT_NEAR(t.mean_rtt(20000, 3), 180.0, 25.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KingSizeTest,
                         ::testing::Values(100, 500, 1000, 1740, 3000));

TEST(Network, DeliversAfterLatency) {
  sim::Simulator s;
  const auto topo = make_triangle();
  Network net(s, topo);
  double arrived = -1.0;
  net.send(0, 2, 100, [&] { arrived = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(arrived, 10.0);
}

TEST(Network, AccountsTraffic) {
  sim::Simulator s;
  const auto topo = make_triangle();
  Network net(s, topo);
  net.send(0, 1, 100, [] {});
  net.send(1, 0, 50, [] {});
  s.run();
  EXPECT_EQ(net.traffic(0).bytes_out, 100u);
  EXPECT_EQ(net.traffic(0).bytes_in, 50u);
  EXPECT_EQ(net.traffic(1).bytes_in, 100u);
  EXPECT_EQ(net.traffic(1).bytes_out, 50u);
  EXPECT_EQ(net.total_messages(), 2u);
  EXPECT_EQ(net.total_bytes(), 150u);
}

TEST(Network, SelfSendIsFreeAndImmediate) {
  sim::Simulator s;
  const auto topo = make_triangle();
  Network net(s, topo);
  bool ran = false;
  net.send(1, 1, 1000, [&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(net.total_bytes(), 0u);
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
}

TEST(Network, DropsToDeadHosts) {
  sim::Simulator s;
  const auto topo = make_triangle();
  Network net(s, topo);
  net.kill(2);
  bool ran = false;
  net.send(0, 2, 10, [&] { ran = true; });
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(net.dropped(), 1u);
  net.revive(2);
  net.send(0, 2, 10, [&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);
}

TEST(Network, DeathInFlightDropsDelivery) {
  sim::Simulator s;
  const auto topo = make_triangle();
  Network net(s, topo);
  bool ran = false;
  net.send(0, 2, 10, [&] { ran = true; });  // arrives at t=10
  s.schedule(5.0, [&] { net.kill(2); });
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(net.dropped(), 1u);
}

TEST(Network, ResetTrafficZeroes) {
  sim::Simulator s;
  const auto topo = make_triangle();
  Network net(s, topo);
  net.send(0, 1, 100, [] {});
  s.run();
  net.reset_traffic();
  EXPECT_EQ(net.traffic(0).bytes_out, 0u);
  EXPECT_EQ(net.total_messages(), 0u);
}

}  // namespace
}  // namespace hypersub::net
