// Index/scan parity: the SubIndex-backed ZoneState::match must return
// exactly what the linear scan returns — same subids, same order — across
// randomized workloads and through every mutation path (add, remove,
// arc extraction, bucket/piece installs), plus end-to-end delivery with an
// aggressive index threshold.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "core/sub_index.hpp"
#include "core/zone_state.hpp"
#include "net/topology.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub {
namespace {

using core::StoredSub;
using core::SubId;
using core::SubIdKind;
using core::SubIndex;
using core::ZoneAddr;
using core::ZoneState;

constexpr std::size_t kNever = ~std::size_t{0};

StoredSub make_stored(std::size_t i, const pubsub::Subscription& sub) {
  // Spread owner ids over the whole ring so random arcs hit some of them.
  const Id owner = Id(i) * 0x9E3779B97F4A7C15ull + 13;
  return StoredSub{SubId{owner, std::uint32_t(i), SubIdKind::kSubscriber},
                   sub, sub.range()};
}

std::vector<SubId> match_of(const ZoneState& z, const Point& p) {
  std::vector<SubId> out;
  z.match(p, p, out);
  return out;
}

// -- SubIndex unit properties -------------------------------------------------

TEST(SubIndex, CandidatesAreSupersetOfExactMatches) {
  workload::WorkloadGenerator gen(workload::table1_spec(), 71);
  SubIndex idx;
  std::vector<HyperRect> live;
  std::vector<std::uint32_t> slots;
  for (int i = 0; i < 3000; ++i) {
    const auto r = gen.make_subscription().range();
    slots.push_back(idx.insert(r));
    live.push_back(r);
  }
  // Remove a third, keeping slot/live aligned.
  for (std::size_t i = live.size(); i-- > 0;) {
    if (i % 3 == 0) {
      idx.remove(slots[i]);
      slots.erase(slots.begin() + std::ptrdiff_t(i));
      live.erase(live.begin() + std::ptrdiff_t(i));
    }
  }
  ASSERT_EQ(idx.size(), live.size());

  std::vector<std::uint32_t> cand;
  for (int e = 0; e < 200; ++e) {
    const Point p = gen.make_event().point;
    cand.clear();
    idx.candidates(p, cand);
    ASSERT_TRUE(std::is_sorted(cand.begin(), cand.end()));
    const std::set<std::uint32_t> cset(cand.begin(), cand.end());
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (live[i].contains(p)) {
        EXPECT_TRUE(cset.count(slots[i]))
            << "slot " << slots[i] << " missing for event " << e;
      }
    }
  }
}

TEST(SubIndex, SlotRecyclingKeepsCapacityBounded) {
  workload::WorkloadGenerator gen(workload::table1_spec(), 72);
  SubIndex idx;
  std::vector<std::uint32_t> slots;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 100; ++i) {
      slots.push_back(idx.insert(gen.make_subscription().range()));
    }
    for (int i = 0; i < 100; ++i) {
      idx.remove(slots.back());
      slots.pop_back();
    }
  }
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_LE(idx.slot_capacity(), 100u);
}

// -- ZoneState parity ---------------------------------------------------------

// Drives an indexed and a scan-only ZoneState through the same mutation
// sequence and asserts bit-for-bit identical match output throughout.
TEST(MatchIndexParity, RandomizedMutationSequence) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    workload::WorkloadGenerator gen(workload::table1_spec(), seed);
    ZoneState indexed(ZoneAddr{}, /*index_threshold=*/0);
    ZoneState linear(ZoneAddr{}, /*index_threshold=*/kNever);

    std::vector<StoredSub> stored;
    auto add_batch = [&](std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        const auto s = make_stored(stored.size(), gen.make_subscription());
        stored.push_back(s);
        indexed.add_subscription(s);
        linear.add_subscription(s);
      }
    };
    auto expect_parity = [&](const char* what) {
      ASSERT_TRUE(indexed.index_active());
      ASSERT_FALSE(linear.index_active());
      for (int e = 0; e < 64; ++e) {
        const Point p = gen.make_event().point;
        ASSERT_EQ(match_of(indexed, p), match_of(linear, p))
            << what << " seed " << seed << " event " << e;
      }
      EXPECT_EQ(indexed.summary(), linear.summary()) << what;
    };

    add_batch(800);
    expect_parity("after adds");

    // Remove a random quarter through the owner-keyed removal path.
    Rng rng(seed * 7 + 1);
    std::vector<StoredSub> keep;
    for (const auto& s : stored) {
      if (rng.chance(0.25)) {
        ASSERT_TRUE(indexed.remove_subscription(s.owner).has_value());
        ASSERT_TRUE(linear.remove_subscription(s.owner).has_value());
      } else {
        keep.push_back(s);
      }
    }
    stored = std::move(keep);
    expect_parity("after removals");

    // Migrate an arc away (the load-balancer path).
    const Id lo = rng.next_u64();
    const Id hi = lo + (~Id{0} / 3);  // wrap-aware arc, ~1/3 of the ring
    const auto out_i = indexed.extract_subscribers_in_arc(lo, hi);
    const auto out_l = linear.extract_subscribers_in_arc(lo, hi);
    ASSERT_EQ(out_i.size(), out_l.size());
    for (std::size_t i = 0; i < out_i.size(); ++i) {
      EXPECT_EQ(out_i[i].owner, out_l[i].owner);
    }
    EXPECT_GT(out_i.size(), 0u);
    expect_parity("after arc extraction");

    // Keep mutating after the extraction: adds must reuse freed slots.
    add_batch(400);
    expect_parity("after post-extraction adds");

    // Piece + bucket entries ride along identically in both modes.
    const HyperRect piece = stored.front().projected;
    indexed.set_parent_piece(piece, Id{42});
    linear.set_parent_piece(piece, Id{42});
    const core::MigratedBucket bucket{stored.back().projected,
                                      {},
                                      SubId{Id{7}, 1, SubIdKind::kMigrated}};
    indexed.add_migrated_bucket(bucket);
    linear.add_migrated_bucket(bucket);
    expect_parity("with piece and bucket");
  }
}

TEST(MatchIndexParity, ThresholdCrossingAndOverride) {
  workload::WorkloadGenerator gen(workload::table1_spec(), 5);
  ZoneState z(ZoneAddr{}, /*index_threshold=*/16);
  for (std::size_t i = 0; i < 15; ++i) {
    z.add_subscription(make_stored(i, gen.make_subscription()));
  }
  EXPECT_FALSE(z.index_active());
  z.add_subscription(make_stored(15, gen.make_subscription()));
  EXPECT_TRUE(z.index_active());

  // Raising the threshold drops back to the scan; lowering rebuilds.
  const Point p = gen.make_event().point;
  const auto with_index = match_of(z, p);
  z.set_index_threshold(kNever);
  EXPECT_FALSE(z.index_active());
  EXPECT_EQ(match_of(z, p), with_index);
  z.set_index_threshold(0);
  EXPECT_TRUE(z.index_active());
  EXPECT_EQ(match_of(z, p), with_index);
}

// -- end-to-end ---------------------------------------------------------------

// Full-system delivery with the index forced on everywhere (threshold 1)
// must equal brute force over the live subscriptions — the existing
// delivery-exactness property, now exercising the indexed path.
TEST(MatchIndexParity, EndToEndDeliveryEqualsBruteForce) {
  const std::size_t n = 40;
  net::KingLikeTopology::Params tp;
  tp.hosts = n;
  tp.seed = 9;
  net::KingLikeTopology topo(tp);
  sim::Simulator sim;
  net::Network net(sim, topo);
  chord::ChordNet::Params cp;
  cp.seed = 9;
  chord::ChordNet chord(net, cp);
  core::HyperSubSystem::Config cfg;
  cfg.bootstrap = core::BootstrapMode::kOracle;
  cfg.match_index_threshold = 1;
  core::HyperSubSystem sys(chord, cfg);
  workload::WorkloadGenerator gen(workload::table1_spec(), 99);
  core::SchemeOptions opt;
  opt.zone_cfg = {1, 20};
  const auto scheme = sys.add_scheme(gen.scheme(), opt);

  struct Owned {
    net::HostIndex host;
    std::uint32_t iid;
    pubsub::Subscription sub;
  };
  std::vector<Owned> live;
  Rng rng(123);
  for (int i = 0; i < 300; ++i) {
    const auto host = net::HostIndex(rng.index(n));
    const auto sub = gen.make_subscription();
    live.push_back({host, sys.subscribe(host, scheme, sub).iid, sub});
  }
  sim.run();

  for (int e = 0; e < 10; ++e) {
    const std::size_t before = sys.deliveries().size();
    auto ev = gen.make_event();
    sys.publish(net::HostIndex(rng.index(n)), scheme, ev);
    sim.run();
    sys.finalize_events();

    std::multiset<std::pair<std::size_t, std::uint32_t>> got, expect;
    for (std::size_t i = before; i < sys.deliveries().size(); ++i) {
      got.insert({sys.deliveries()[i].subscriber, sys.deliveries()[i].iid});
    }
    for (const auto& o : live) {
      if (o.sub.matches(ev.point)) expect.insert({o.host, o.iid});
    }
    ASSERT_EQ(got, expect) << "event " << e;
  }
  EXPECT_TRUE(sys.check_zone_invariants());
}

}  // namespace
}  // namespace hypersub
