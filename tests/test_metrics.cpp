// Metrics and reporting tests.

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/event_metrics.hpp"
#include "metrics/node_metrics.hpp"
#include "metrics/report.hpp"
#include "net/network.hpp"

namespace hypersub::metrics {
namespace {

TEST(EventMetrics, CdfViews) {
  EventMetrics m;
  m.add({1, 5, 0.5, 10, 100.0, 2048});
  m.add({2, 10, 1.0, 20, 200.0, 4096});
  EXPECT_EQ(m.count(), 2u);
  EXPECT_DOUBLE_EQ(m.pct_matched_cdf().mean(), 0.75);
  EXPECT_DOUBLE_EQ(m.hops_cdf().max(), 20.0);
  EXPECT_DOUBLE_EQ(m.latency_cdf().min(), 100.0);
  EXPECT_DOUBLE_EQ(m.bandwidth_kb_cdf().mean(), 3.0);
}

TEST(NodeMetrics, SnapshotCombinesTrafficAndLoad) {
  sim::Simulator sim;
  net::MatrixTopology topo({{0, 1}, {1, 0}});
  net::Network net(sim, topo);
  net.send(0, 1, 500, [] {});
  sim.run();
  const auto m = snapshot_nodes(net, {7, 3});
  ASSERT_EQ(m.count(), 2u);
  EXPECT_EQ(m.records()[0].bytes_out, 500u);
  EXPECT_EQ(m.records()[1].bytes_in, 500u);
  EXPECT_EQ(m.records()[0].load, 7u);
  EXPECT_DOUBLE_EQ(m.load_cdf().max(), 7.0);
  const auto ranked = m.ranked_load();
  EXPECT_EQ(ranked, (std::vector<double>{7.0, 3.0}));
}

TEST(Report, CdfFigurePrintsSeriesAndRows) {
  Cdf c;
  for (int i = 1; i <= 10; ++i) c.add(double(i));
  std::ostringstream os;
  print_cdf_figure(os, "Fig X", "value", {{"series-a", c}}, 5);
  const std::string out = os.str();
  EXPECT_NE(out.find("Fig X"), std::string::npos);
  EXPECT_NE(out.find("series-a"), std::string::npos);
  EXPECT_NE(out.find("avg=5.500"), std::string::npos);
}

TEST(Report, RankedFigure) {
  Cdf c;
  for (int i = 1; i <= 50; ++i) c.add(double(i));
  std::ostringstream os;
  print_ranked_figure(os, "Fig 4", {{"loads", c}}, 30, 10);
  const std::string out = os.str();
  EXPECT_NE(out.find("Fig 4"), std::string::npos);
  EXPECT_NE(out.find("max 50.000"), std::string::npos);
}

TEST(Report, XyFigure) {
  std::ostringstream os;
  print_xy_figure(os, "Fig 5", "n", {"a", "b"}, {1, 2},
                  {{10, 20}, {30, 40}});
  const std::string out = os.str();
  EXPECT_NE(out.find("Fig 5"), std::string::npos);
  EXPECT_NE(out.find("30.000"), std::string::npos);
}

}  // namespace
}  // namespace hypersub::metrics
