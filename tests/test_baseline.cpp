// Baseline tests: the Ferry-like single-rendezvous system and the
// Meghdoot-like CAN system must both deliver exactly the brute-force match
// set — they are comparison systems, so their correctness matters as much
// as HyperSub's.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "baseline/ferry_like.hpp"
#include "baseline/meghdoot_like.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub::baseline {
namespace {

TEST(Ferry, AllSubscriptionsLandOnRendezvousNode) {
  net::KingLikeTopology::Params tp;
  tp.hosts = 60;
  net::KingLikeTopology topo(tp);
  sim::Simulator sim;
  net::Network net(sim, topo);
  chord::ChordNet chord(net, {});
  chord.oracle_build();

  workload::WorkloadGenerator gen(workload::tiny_spec(), 3);
  FerryLike ferry(chord, gen.scheme());
  for (net::HostIndex h = 0; h < 60; ++h) {
    ferry.subscribe(h, gen.make_subscription());
  }
  sim.run();

  const auto loads = ferry.node_loads();
  std::size_t nonzero = 0, total = 0;
  for (const auto l : loads) {
    if (l > 0) ++nonzero;
    total += l;
  }
  EXPECT_EQ(nonzero, 1u);  // the single-rendezvous bottleneck
  EXPECT_EQ(total, 60u);
  const auto rdv = chord.oracle_successor(ferry.rendezvous_key());
  EXPECT_GT(loads[rdv.host], 0u);
}

TEST(Ferry, DeliversBruteForceMatchSet) {
  net::KingLikeTopology::Params tp;
  tp.hosts = 50;
  tp.seed = 5;
  net::KingLikeTopology topo(tp);
  sim::Simulator sim;
  net::Network net(sim, topo);
  chord::ChordNet chord(net, {});
  chord.oracle_build();

  workload::WorkloadGenerator gen(workload::table1_spec(), 7);
  FerryLike ferry(chord, gen.scheme());
  std::vector<std::pair<net::HostIndex, pubsub::Subscription>> subs;
  Rng rng(11);
  for (int i = 0; i < 150; ++i) {
    const auto h = net::HostIndex(rng.index(50));
    const auto sub = gen.make_subscription();
    ferry.subscribe(h, sub);
    subs.emplace_back(h, sub);
  }
  sim.run();

  std::size_t expected_total = 0;
  std::size_t published = 40;
  for (std::size_t i = 0; i < published; ++i) {
    const auto e = gen.make_event();
    for (const auto& [h, sub] : subs) {
      if (sub.matches(e.point)) ++expected_total;
    }
    ferry.publish(net::HostIndex(rng.index(50)), e);
    sim.run();
  }
  ferry.finalize_events();
  EXPECT_EQ(ferry.deliveries(), expected_total);
  EXPECT_EQ(ferry.event_metrics().count(), published);
}

TEST(Meghdoot, DeliversBruteForceMatchSet) {
  net::KingLikeTopology::Params tp;
  tp.hosts = 80;
  tp.seed = 9;
  net::KingLikeTopology topo(tp);
  sim::Simulator sim;
  net::Network net(sim, topo);

  workload::WorkloadGenerator gen(workload::tiny_spec(), 13);
  can::CanNet can(net, {2 * gen.scheme().arity(), 4});
  ASSERT_TRUE(can.check_invariants());
  MeghdootLike meg(can, gen.scheme());

  std::vector<std::pair<net::HostIndex, pubsub::Subscription>> subs;
  Rng rng(15);
  for (int i = 0; i < 150; ++i) {
    const auto h = net::HostIndex(rng.index(80));
    const auto sub = gen.make_subscription();
    meg.subscribe(h, sub);
    subs.emplace_back(h, sub);
  }
  sim.run();

  std::size_t expected_total = 0;
  const std::size_t published = 30;
  for (std::size_t i = 0; i < published; ++i) {
    const auto e = gen.make_event();
    for (const auto& [h, sub] : subs) {
      if (sub.matches(e.point)) ++expected_total;
    }
    meg.publish(net::HostIndex(rng.index(80)), e);
    sim.run();
  }
  meg.finalize_events();
  EXPECT_EQ(meg.deliveries(), expected_total);
  EXPECT_EQ(meg.event_metrics().count(), published);
}

TEST(Meghdoot, SubscriptionPointAndRegionGeometry) {
  net::KingLikeTopology::Params tp;
  tp.hosts = 10;
  net::KingLikeTopology topo(tp);
  sim::Simulator sim;
  net::Network net(sim, topo);
  workload::WorkloadGenerator gen(workload::tiny_spec(), 1);
  can::CanNet can(net, {2 * gen.scheme().arity(), 2});
  MeghdootLike meg(can, gen.scheme());

  // A subscription's point must lie inside the affected region of every
  // event it matches — the invariant the whole mapping relies on.
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    const auto sub = gen.make_subscription();
    const auto e = gen.make_event();
    const auto p = meg.subscription_point(sub);
    const auto region = meg.affected_region(e);
    EXPECT_EQ(sub.matches(e.point), region.contains(p))
        << "mapping broken at sample " << i;
  }
}

}  // namespace
}  // namespace hypersub::baseline
