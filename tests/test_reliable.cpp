// Reliability-layer tests: ReliableChannel transport semantics, reliable
// lookup routing with successor failover, load-balancer correctness under
// the self-inclusive average and failure-atomic migration, and churn
// delivery with retries + reroutes versus the fire-and-forget baseline.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <tuple>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "core/load_balancer.hpp"
#include "net/reliable_channel.hpp"
#include "net/topology.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub {
namespace {

using core::HyperSubSystem;
using core::LoadBalancer;

struct Stack {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<chord::ChordNet> chord;
  std::unique_ptr<core::HyperSubSystem> sys;
};

Stack make_stack(std::size_t n, std::uint64_t seed = 1,
                 bool reliable = false) {
  Stack s;
  net::KingLikeTopology::Params tp;
  tp.hosts = n;
  tp.seed = seed;
  s.topo = std::make_unique<net::KingLikeTopology>(tp);
  s.sim = std::make_unique<sim::Simulator>();
  s.net = std::make_unique<net::Network>(*s.sim, *s.topo);
  chord::ChordNet::Params cp;
  cp.seed = seed;
  cp.reliable_routing = reliable;
  s.chord = std::make_unique<chord::ChordNet>(*s.net, cp);
  HyperSubSystem::Config sc;
  sc.bootstrap = core::BootstrapMode::kOracle;
  sc.reliable_delivery = reliable;
  s.sys = std::make_unique<core::HyperSubSystem>(*s.chord, sc);
  return s;
}

// ---------------------------------------------------------------------------
// ReliableChannel transport semantics
// ---------------------------------------------------------------------------

TEST(ReliableChannel, DeliversOnceAndAcks) {
  auto s = make_stack(4);
  net::ReliableChannel ch(*s.net);
  int delivered = 0, failed = 0;
  ch.send(0, 1, 100, [&] { ++delivered; }, [&] { ++failed; });
  s.sim->run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(ch.stats().sent, 1u);
  EXPECT_EQ(ch.stats().acked, 1u);
  EXPECT_EQ(ch.stats().retries, 0u);
  EXPECT_EQ(ch.stats().expired, 0u);
}

TEST(ReliableChannel, SelfSendDeliversWithoutAckMachinery) {
  auto s = make_stack(4);
  net::ReliableChannel ch(*s.net);
  int delivered = 0;
  ch.send(2, 2, 50, [&] { ++delivered; });
  s.sim->run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(ch.stats().retries, 0u);
}

TEST(ReliableChannel, DeadReceiverExpiresThroughAllRetries) {
  auto s = make_stack(4);
  net::ReliableChannel::Config cfg;
  cfg.max_retries = 2;
  net::ReliableChannel ch(*s.net, cfg);
  s.net->kill(1);
  int delivered = 0, failed = 0;
  ch.send(0, 1, 100, [&] { ++delivered; }, [&] { ++failed; });
  s.sim->run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(ch.stats().retries, 2u);
  EXPECT_EQ(ch.stats().expired, 1u);
  EXPECT_EQ(ch.stats().acked, 0u);
}

TEST(ReliableChannel, RacingRetransmissionsAreSuppressed) {
  auto s = make_stack(4);
  // Ack deadline above the one-way latency but below the RTT: the original
  // copy delivers, yet retries fire before its ack returns and their copies
  // race in behind it.
  net::ReliableChannel::Config cfg;
  cfg.ack_timeout_ms = 1.2 * s.topo->latency(0, 1);
  cfg.backoff = 1.0;
  cfg.max_retries = 3;
  net::ReliableChannel ch(*s.net, cfg);
  int delivered = 0, failed = 0;
  ch.send(0, 1, 100, [&] { ++delivered; }, [&] { ++failed; });
  s.sim->run();
  EXPECT_EQ(delivered, 1);  // exactly once despite the retransmissions
  EXPECT_EQ(failed, 0);
  EXPECT_GT(ch.stats().retries, 0u);
  EXPECT_GT(ch.stats().duplicates_suppressed, 0u);
  EXPECT_EQ(ch.stats().acked, 1u);
}

TEST(ReliableChannel, ExpiredMessageSuppressesLateDelivery) {
  auto s = make_stack(4);
  // Ack deadline below the one-way latency: every attempt expires before
  // any copy can arrive. Once the sender gives up (and would reroute), a
  // late-arriving original must NOT be processed — at-most-once per
  // logical message, or the reroute would duplicate it.
  net::ReliableChannel::Config cfg;
  cfg.ack_timeout_ms = 0.01;
  cfg.backoff = 1.0;
  cfg.max_retries = 3;
  net::ReliableChannel ch(*s.net, cfg);
  int delivered = 0, failed = 0;
  ch.send(0, 1, 100, [&] { ++delivered; }, [&] { ++failed; });
  s.sim->run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(ch.stats().expired, 1u);
  EXPECT_EQ(ch.stats().duplicates_suppressed, 4u);  // all four copies
}

TEST(ReliableChannel, OnFailNotRunAtDeadSender) {
  auto s = make_stack(4);
  net::ReliableChannel ch(*s.net);
  s.net->kill(1);
  int failed = 0;
  ch.send(0, 1, 100, [] {}, [&] { ++failed; });
  // The sender dies while its retries are pending; nobody is left to
  // reroute, so on_fail must not run.
  s.sim->schedule(1.0, [&] { s.net->kill(0); });
  s.sim->run();
  EXPECT_EQ(failed, 0);
}

// ---------------------------------------------------------------------------
// Reliable lookup routing: failover around a dead owner
// ---------------------------------------------------------------------------

TEST(ReliableRouting, RouteFailsOverToSuccessorOfDeadOwner) {
  auto s = make_stack(24, 5, /*reliable=*/true);
  const Id key = 0x123456789abcdef0ULL;
  const auto owner = s.chord->oracle_successor(key);
  s.chord->fail(owner.host);
  // No repair: routing state everywhere still points at the dead owner.
  const auto heir = s.chord->oracle_successor(key);
  ASSERT_NE(heir.host, owner.host);

  overlay::Peer reached;
  s.chord->route((owner.host + 1) % 24, key, 0,
                 [&](const chord::ChordNet::RouteResult& r) {
                   reached = r.owner;
                 });
  s.sim->run();
  // The lookup detoured around the dead node and terminated at the live
  // heir of its range (predecessor gossip lets the heir claim the range).
  EXPECT_EQ(reached.host, heir.host);
  const auto rel = s.chord->route_reliability();
  EXPECT_GT(rel.expirations, 0u);
  EXPECT_GT(rel.reroutes, 0u);
  EXPECT_EQ(rel.unmasked_drops, 0u);
}

TEST(ReliableRouting, SubscribeSurvivesDeadOwnerAndEventsDeliver) {
  auto s = make_stack(24, 7, /*reliable=*/true);
  workload::WorkloadGenerator gen(workload::tiny_spec(), 3);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);

  const auto sub = pubsub::Subscription(gen.scheme().domain());
  const auto& ss = s.sys->scheme_runtime(scheme).subscheme(0);
  const auto key =
      lph::hash_subscription(ss.zones(), sub.range(), ss.rotation()).key;
  const auto owner = s.chord->oracle_successor(key);
  s.chord->fail(owner.host);
  const auto heir = s.chord->oracle_successor(key);

  const net::HostIndex subscriber = (owner.host + 1) % 24 == heir.host
                                        ? (owner.host + 2) % 24
                                        : (owner.host + 1) % 24;
  ASSERT_TRUE(s.net->alive(subscriber));
  s.sys->subscribe(subscriber, scheme, sub);
  s.sim->run();
  // The installation failed over to the heir instead of vanishing.
  EXPECT_GT(s.sys->node(heir.host).zones().size(), 0u);

  net::HostIndex pub = 0;
  while (!s.net->alive(pub) || pub == subscriber) ++pub;
  s.sys->publish(pub, scheme, gen.make_event());
  s.sim->run();
  s.sys->finalize_events();
  ASSERT_EQ(s.sys->deliveries().size(), 1u);
  EXPECT_EQ(s.sys->deliveries()[0].subscriber, subscriber);
}

// ---------------------------------------------------------------------------
// Load balancer: self-inclusive neighborhood average
// ---------------------------------------------------------------------------

/// Injects `count` subscriptions owned by node id `owner_id` directly into
/// a zone hosted at `host` (bypasses routing: load-shape control).
void inject_load(Stack& s, std::uint32_t scheme, net::HostIndex host,
                 Id owner_id, std::size_t count) {
  const auto& rt = s.sys->scheme_runtime(scheme);
  const auto& ss = rt.subscheme(0);
  const lph::Zone root = ss.zones().root();
  const core::ZoneAddr addr{scheme, 0, root};
  auto& zs = s.sys->node(host).zone_state(addr, ss.zone_key(root));
  const HyperRect range = rt.scheme().domain();
  for (std::size_t i = 0; i < count; ++i) {
    zs.add_subscription(core::StoredSub{
        core::SubId{owner_id, std::uint32_t(i), core::SubIdKind::kSubscriber},
        pubsub::Subscription(range), ss.project(range)});
  }
}

TEST(LoadBalancerAverage, SelfInclusiveAverageAvoidsSpuriousMigration) {
  // 3-node ring: h=100, B=80, C=96. Without self in the average, h sees
  // avg=(80+96)/2=88, threshold 96.8 < 100 and migrates even though it
  // carries almost exactly the true neighborhood average (92, threshold
  // 101.2). The self-inclusive average must not migrate.
  auto s = make_stack(3, 17);
  workload::WorkloadGenerator gen(workload::tiny_spec(), 3);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  inject_load(s, scheme, 0, s.chord->id_of(1), 100);
  inject_load(s, scheme, 1, s.chord->id_of(1), 80);
  inject_load(s, scheme, 2, s.chord->id_of(1), 96);

  LoadBalancer::Config lc;
  lc.delta = 0.1;
  LoadBalancer lb(*s.sys, lc);
  lb.run_round();
  EXPECT_EQ(lb.migrated_count(), 0u);
  EXPECT_EQ(s.sys->node(0).load(), 100u);
}

TEST(LoadBalancerAverage, GenuineOverloadStillMigrates) {
  // Same shape with B nearly idle: avg=(100+10+96)/3≈68.7, threshold ≈75.5
  // < 100 — h must still migrate (the fix must not deadband real skew).
  auto s = make_stack(3, 17);
  workload::WorkloadGenerator gen(workload::tiny_spec(), 3);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  inject_load(s, scheme, 0, s.chord->id_of(1), 100);
  inject_load(s, scheme, 1, s.chord->id_of(1), 10);
  inject_load(s, scheme, 2, s.chord->id_of(1), 96);

  LoadBalancer::Config lc;
  lc.delta = 0.1;
  LoadBalancer lb(*s.sys, lc);
  lb.run_round();
  EXPECT_GT(lb.migrated_count(), 0u);
  EXPECT_LT(s.sys->node(0).load(), 100u);
}

// ---------------------------------------------------------------------------
// Load balancer: failure-atomic migration
// ---------------------------------------------------------------------------

TEST(LoadBalancerMigration, AcceptorDeathRollsBackExtractedBucket) {
  // 8 nodes: h=0 overloaded (120), X idle (0, the only acceptor), W dead
  // before the round (forces the probe to finalize at the reply timeout),
  // the rest at 60. X is killed while the migration bucket is in flight:
  // the handoff must roll back — nothing counted migrated, every
  // subscription back at the origin.
  auto s = make_stack(8, 23);
  workload::WorkloadGenerator gen(workload::tiny_spec(), 3);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  const net::HostIndex h = 0, x = 1, w = 2;
  inject_load(s, scheme, h, s.chord->id_of(x), 120);
  for (net::HostIndex m = 3; m < 8; ++m) {
    inject_load(s, scheme, m, s.chord->id_of(x), 60);
  }
  s.net->kill(w);

  LoadBalancer::Config lc;
  lc.delta = 0.1;
  LoadBalancer lb(*s.sys, lc);
  // The bucket leaves h when the probe round finalizes (reply timeout,
  // because dead W never answers); kill X while it is in flight.
  const double in_flight =
      lc.reply_timeout_ms + 0.5 * s.topo->latency(h, x);
  s.sim->schedule(in_flight, [&] { s.net->kill(x); });
  lb.run_round();

  EXPECT_EQ(lb.migrated_count(), 0u);
  EXPECT_GT(lb.failed_migrations(), 0u);
  EXPECT_EQ(s.sys->node(h).load(), 120u);  // rolled back, nothing lost
  // The reinstalled zones are internally exact: each summary still covers
  // every subscription. Extraction shrinks the summary exactly and the
  // rollback re-grows it, so the re-propagation can leave structural
  // piece-only zones at the origin — count subscriptions across zones.
  std::size_t reinstalled = 0;
  for (const auto& [addr, zone] : s.sys->node(h).zones()) {
    reinstalled += zone.subscription_count();
    for (const auto& sub : zone.subscriptions()) {
      EXPECT_TRUE(zone.summary().covers(sub.projected));
    }
  }
  EXPECT_EQ(reinstalled, 120u);
}

TEST(LoadBalancerMigration, HealthyMigrationConfirmsAndCounts) {
  // Identical shape but nobody dies mid-handoff: the whole arc [X, h)
  // (every injected subscription) lands at X and is counted only then.
  auto s = make_stack(8, 23);
  workload::WorkloadGenerator gen(workload::tiny_spec(), 3);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
  const net::HostIndex h = 0, x = 1, w = 2;
  inject_load(s, scheme, h, s.chord->id_of(x), 120);
  for (net::HostIndex m = 3; m < 8; ++m) {
    inject_load(s, scheme, m, s.chord->id_of(x), 60);
  }
  s.net->kill(w);

  LoadBalancer::Config lc;
  lc.delta = 0.1;
  LoadBalancer lb(*s.sys, lc);
  lb.run_round();

  EXPECT_EQ(lb.migrated_count(), 120u);
  EXPECT_EQ(lb.failed_migrations(), 0u);
  // All that remains at the origin is the surrogate bucket pointer.
  EXPECT_EQ(s.sys->node(h).load(), 1u);
  EXPECT_EQ(s.sys->node(x).load(), 120u);
}

// ---------------------------------------------------------------------------
// Churn delivery: reliable layer strictly beats fire-and-forget
// ---------------------------------------------------------------------------

TEST(ChurnDelivery, ReliableBeatsFireAndForgetWithZeroDuplicates) {
  constexpr std::size_t kHosts = 40;
  constexpr int kSubs = 200;
  constexpr int kEvents = 50;

  auto run = [&](bool reliable) {
    auto s = make_stack(kHosts, 31, reliable);
    workload::WorkloadGenerator gen(workload::table1_spec(), 7);
    core::SchemeOptions opt;
    opt.zone_cfg = {1, 20};
    const auto scheme = s.sys->add_scheme(gen.scheme(), opt);
    Rng rng(41);
    for (int i = 0; i < kSubs; ++i) {
      s.sys->subscribe(net::HostIndex(rng.index(kHosts)), scheme,
                       gen.make_subscription());
    }
    s.sim->run();
    // Kill a third of the network; no repair — stale routing state
    // everywhere, exactly the test_failure kill pattern.
    for (net::HostIndex k = 0; k < kHosts; k += 3) s.chord->fail(k);
    for (int i = 0; i < kEvents; ++i) {
      net::HostIndex pub = net::HostIndex(rng.index(kHosts));
      while (!s.net->alive(pub)) pub = (pub + 1) % kHosts;
      s.sys->publish(pub, scheme, gen.make_event());
    }
    s.sim->run();
    s.sys->finalize_events();
    return s;
  };

  auto baseline = run(false);
  auto rel = run(true);

  // Every recorded delivery reached a live subscriber in both stacks.
  for (const auto& d : rel.sys->deliveries()) {
    EXPECT_TRUE(rel.net->alive(d.subscriber));
  }
  // The reliable stack masks dead intermediate hops that silently swallow
  // whole delivery subtrees in the baseline.
  EXPECT_GT(rel.sys->deliveries().size(), baseline.sys->deliveries().size());

  // Zero duplicate deliveries per (event, subscriber, subscription).
  std::set<std::tuple<std::uint64_t, net::HostIndex, std::uint32_t>> seen;
  for (const auto& d : rel.sys->deliveries()) {
    EXPECT_TRUE(seen.insert({d.event_seq, d.subscriber, d.iid}).second)
        << "duplicate delivery of event " << d.event_seq;
  }

  // The reliability machinery actually engaged, and its counters account
  // for the losses it could not mask.
  const auto c = rel.sys->reliability_counters();
  EXPECT_GT(c.messages_sent, 0u);
  EXPECT_GT(c.retries, 0u);
  EXPECT_GT(c.expirations, 0u);
  const auto b = baseline.sys->reliability_counters();
  EXPECT_EQ(b.messages_sent, 0u);
  EXPECT_EQ(b.retries, 0u);
}

}  // namespace
}  // namespace hypersub
